package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxRemoteBody bounds what the client will read from (or believe
// about) a single remote object or history stream — far above any real
// blob, small enough that a misbehaving server cannot exhaust memory.
const maxRemoteBody = 1 << 28 // 256 MiB

// remoteQueueDepth and remoteQueueBytes bound the asynchronous
// write-back queue — by entry count and by total pending payload
// (blobs can be megabytes of console output, so a count bound alone
// could pin gigabytes against a slow server). Uploads must never block
// a measurement, so past either bound the queue sheds load (and the
// drop is surfaced via fault) instead of exerting backpressure.
const (
	remoteQueueDepth = 256
	remoteQueueBytes = 256 << 20 // 256 MiB
)

// RemoteTier is the HTTP client side of a simstored server: the last
// tier of a store's lookup chain. Reads are synchronous GETs (read
// misses through to the server once per cold key, thanks to the
// store's single-flight); writes are asynchronous — enqueued here,
// uploaded by a background goroutine, flushed by Close.
//
// The tier degrades rather than fails: the first transport error marks
// the server down, every subsequent load and store short-circuits
// locally, and the reason surfaces through the store's Err. A corrupt
// remote blob is recorded but does not mark the server down — the
// server answered; one object is bad.
type RemoteTier struct {
	tracerRef

	base   string // server URL, no trailing slash
	client *http.Client

	down atomic.Bool

	errMu sync.Mutex
	err   error // first degrade reason, surfaced via fault

	qMu     sync.Mutex
	qClosed bool
	qBytes  int64 // serialized payload currently queued
	queue   chan remotePut
	drained chan struct{}
	dropped atomic.Uint64
}

type remotePut struct {
	k    Key
	data []byte
}

// NewRemoteTier builds a client for the simstored server at baseURL
// (e.g. "http://ci-cache:8347") and starts its upload goroutine.
func NewRemoteTier(baseURL string) (*RemoteTier, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("store: remote %q: %w", baseURL, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return nil, fmt.Errorf("store: remote %q: want an http(s) URL like http://host:8347", baseURL)
	}
	rt := &RemoteTier{
		base: strings.TrimRight(baseURL, "/"),
		// Timeouts bound connecting and waiting for the server to start
		// answering — the failure modes a dead or hung server actually
		// shows — not the body transfer: a flat whole-request deadline
		// would flag a healthy server as down the day the fleet history
		// (or a big blob) outgrows it.
		client: &http.Client{Transport: &http.Transport{
			DialContext:           (&net.Dialer{Timeout: 5 * time.Second}).DialContext,
			TLSHandshakeTimeout:   5 * time.Second,
			ResponseHeaderTimeout: 15 * time.Second,
		}},
		queue:   make(chan remotePut, remoteQueueDepth),
		drained: make(chan struct{}),
	}
	go rt.uploader()
	return rt, nil
}

// URL returns the server base URL the tier talks to.
func (rt *RemoteTier) URL() string { return rt.base }

func (rt *RemoteTier) name() Provenance { return ProvRemote }

func (rt *RemoteTier) objectURL(k Key) string { return rt.base + "/objects/" + k.String() }

// degrade marks the server down and records why. Only the first
// reason is kept; once down, the tier answers everything locally.
func (rt *RemoteTier) degrade(err error) {
	if !rt.down.Swap(true) {
		rt.noteDegraded()
	}
	rt.record(err)
}

func (rt *RemoteTier) record(err error) {
	rt.errMu.Lock()
	if rt.err == nil {
		rt.err = err
	}
	rt.errMu.Unlock()
}

// fault reports the tier's degradation: the first recorded failure,
// joined with a live drop summary. The drop count is folded in here —
// rather than recorded once at first drop — so the reported number is
// the final tally and drops still surface when a transport failure
// claimed the single recorded-error slot first.
func (rt *RemoteTier) fault() error {
	rt.errMu.Lock()
	err := rt.err
	rt.errMu.Unlock()
	if n := rt.dropped.Load(); n > 0 {
		err = errors.Join(err, fmt.Errorf("store: remote %s: %d uploads dropped (write-back queue full)", rt.base, n))
	}
	return err
}

// Dropped returns how many uploads the write-back queue has shed.
func (rt *RemoteTier) Dropped() uint64 { return rt.dropped.Load() }

// Down reports whether the tier has degraded to local-only operation.
func (rt *RemoteTier) Down() bool { return rt.down.Load() }

// load implements tier: a read-through GET. Any transport failure
// degrades the tier (the run continues on local tiers alone); a blob
// that does not parse or carries a foreign schema is recorded and
// treated as a miss without degrading. Note that a key's blob content
// cannot be verified against the key itself — keys hash the job's
// fingerprint, not the measurement — so a store (local or remote) is
// trusted to return what was put under the key; the server rejects
// non-JSON uploads at the door.
func (rt *RemoteTier) load(k Key) (*blob, []byte, error) {
	if rt.down.Load() {
		return nil, nil, nil
	}
	defer rt.traceRemote("get", k)()
	resp, err := rt.client.Get(rt.objectURL(k))
	if err != nil {
		err = fmt.Errorf("store: remote %s unreachable: %w", rt.base, err)
		rt.degrade(err)
		return nil, nil, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return nil, nil, nil
	case resp.StatusCode != http.StatusOK:
		err = fmt.Errorf("store: remote %s: GET object: %s", rt.base, resp.Status)
		rt.degrade(err)
		return nil, nil, err
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteBody))
	if err != nil {
		err = fmt.Errorf("store: remote %s: read object: %w", rt.base, err)
		rt.degrade(err)
		return nil, nil, err
	}
	b := new(blob)
	if err := json.Unmarshal(data, b); err != nil || b.Schema != SchemaVersion {
		// The server answered; this one object is unusable. Record it
		// so the run's summary warns, measure the cell locally.
		rt.record(fmt.Errorf("store: remote %s: corrupt blob %s (schema %d)", rt.base, k, b.Schema))
		return nil, nil, nil
	}
	return b, data, nil
}

// store implements tier: an asynchronous write-back of the serialized
// blob (marshaled once by the caller; a nil data marshals here). A
// full queue drops the upload — the local tiers already hold the
// result, only fleet sharing is delayed to a future run — and the
// drop is recorded.
func (rt *RemoteTier) store(k Key, b *blob, data []byte) {
	if rt.down.Load() {
		return
	}
	if data == nil {
		var err error
		if data, err = json.Marshal(b); err != nil {
			rt.record(fmt.Errorf("store: encode %s: %w", k, err))
			return
		}
	}
	rt.qMu.Lock()
	defer rt.qMu.Unlock()
	if rt.qClosed {
		return
	}
	if rt.qBytes+int64(len(data)) > remoteQueueBytes {
		rt.drop()
		return
	}
	select {
	case rt.queue <- remotePut{k: k, data: data}:
		rt.qBytes += int64(len(data))
		noteQueueDepth(+1)
	default:
		rt.drop()
	}
}

// drop sheds one upload; the local tiers already hold the result, only
// fleet sharing is deferred to a future run. The count surfaces via
// fault (so Err warns with the tally), TierStats.Dropped, and the drop
// counter. Called with qMu held.
func (rt *RemoteTier) drop() {
	rt.dropped.Add(1)
	rt.noteDrop()
}

// uploader drains the write-back queue. After the first failure the
// tier is down and the remaining queue drains without network calls.
func (rt *RemoteTier) uploader() {
	defer close(rt.drained)
	for p := range rt.queue {
		rt.qMu.Lock()
		rt.qBytes -= int64(len(p.data))
		rt.qMu.Unlock()
		noteQueueDepth(-1)
		if rt.down.Load() {
			continue
		}
		done := rt.traceRemote("put", p.k)
		_, err := rt.send(http.MethodPut, "/objects/"+p.k.String(), p.data, "PUT object")
		done()
		if err != nil {
			rt.degrade(err)
		}
	}
}

// send performs one body-bearing request against the server, drains
// the response, and maps transport errors and non-2xx statuses to one
// error shape — the single place the write-side protocol plumbing
// lives (PUT object, POST run, PUT baseline). transport distinguishes
// "server unreachable" from a delivered non-2xx status, so callers can
// degrade on the former without marking a live server down over one
// rejected request.
func (rt *RemoteTier) send(method, path string, body []byte, what string) (transport bool, err error) {
	req, err := http.NewRequest(method, rt.base+path, bytes.NewReader(body))
	if err != nil {
		return false, fmt.Errorf("remote %s: %w", rt.base, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return true, fmt.Errorf("remote %s unreachable: %w", rt.base, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode/100 != 2 {
		return false, fmt.Errorf("remote %s: %s: %s", rt.base, what, resp.Status)
	}
	return false, nil
}

// Close stops accepting uploads and waits for the queue to drain. It
// is idempotent. Callers flush before reporting cache statistics, so
// the next host's run can share every cell this run measured.
func (rt *RemoteTier) Close() {
	rt.qMu.Lock()
	if !rt.qClosed {
		rt.qClosed = true
		close(rt.queue)
	}
	rt.qMu.Unlock()
	<-rt.drained
}

// Runs fetches the server's recorded history — the fleet-wide
// counterpart of the local history.jsonl, parsed with the same
// malformed-entry tolerance.
func (rt *RemoteTier) Runs() ([]RunRecord, error) {
	if rt.down.Load() {
		return nil, fmt.Errorf("remote %s degraded: %w", rt.base, rt.fault())
	}
	resp, err := rt.client.Get(rt.base + "/runs")
	if err != nil {
		err = fmt.Errorf("remote %s unreachable: %w", rt.base, err)
		rt.degrade(err)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote %s: GET /runs: %s", rt.base, resp.Status)
	}
	runs, skipped, firstBad, err := decodeHistory(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("remote %s: read /runs: %w", rt.base, err)
	}
	if len(runs) == 0 && skipped > 0 {
		return nil, fmt.Errorf("remote %s: no history entry parses (%d malformed): %w", rt.base, skipped, firstBad)
	}
	return runs, nil
}

// AppendRun posts one history line to the server. A transport failure
// degrades the tier: the local history line has already landed, and
// the caller surfaces the loss as a warning.
func (rt *RemoteTier) AppendRun(line []byte) error {
	if rt.down.Load() {
		return fmt.Errorf("remote %s degraded: %w", rt.base, rt.fault())
	}
	if transport, err := rt.send(http.MethodPost, "/runs", line, "POST /runs"); err != nil {
		if transport {
			rt.degrade(err)
		}
		return err
	}
	return nil
}

// SaveBaseline uploads a serialized baseline under name. Unlike the
// measurement path it does not consult or flip the degraded flag: a
// baseline save is an explicit user action whose failure is reported
// directly, not folded into run-level degradation.
func (rt *RemoteTier) SaveBaseline(name string, data []byte) error {
	_, err := rt.send(http.MethodPut, "/baselines/"+url.PathEscape(name), data, "PUT baseline")
	return err
}

// LoadBaseline fetches a baseline; ok is false when the server has no
// baseline of that name.
func (rt *RemoteTier) LoadBaseline(name string) (rr RunRecord, ok bool, err error) {
	resp, err := rt.client.Get(rt.base + "/baselines/" + url.PathEscape(name))
	if err != nil {
		return RunRecord{}, false, fmt.Errorf("remote %s unreachable: %w", rt.base, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return RunRecord{}, false, nil
	case resp.StatusCode != http.StatusOK:
		return RunRecord{}, false, fmt.Errorf("remote %s: GET baseline: %s", rt.base, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteBody))
	if err != nil {
		return RunRecord{}, false, fmt.Errorf("remote %s: read baseline: %w", rt.base, err)
	}
	if err := json.Unmarshal(data, &rr); err != nil {
		return RunRecord{}, false, fmt.Errorf("remote %s: baseline %q: %w", rt.base, name, err)
	}
	return rr, true, nil
}

// Baselines lists the server's baseline names.
func (rt *RemoteTier) Baselines() ([]string, error) {
	resp, err := rt.client.Get(rt.base + "/baselines")
	if err != nil {
		return nil, fmt.Errorf("remote %s unreachable: %w", rt.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote %s: GET /baselines: %s", rt.base, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRemoteBody))
	if err != nil {
		return nil, fmt.Errorf("remote %s: read /baselines: %w", rt.base, err)
	}
	var names []string
	if err := json.Unmarshal(data, &names); err != nil {
		return nil, fmt.Errorf("remote %s: /baselines: %w", rt.base, err)
	}
	return names, nil
}
