//go:build unix

package store

import (
	"os"
	"syscall"
)

// lockExclusive takes an exclusive advisory lock on f, blocking until
// it is available, and returns the matching unlock. flock locks follow
// the open file description, so two processes — or two goroutines
// holding separate descriptors — serialize against each other, and a
// crashed holder releases its lock with its descriptors.
func lockExclusive(f *os.File) (unlock func() error, err error) {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return nil, err
		}
		return func() error { return syscall.Flock(int(f.Fd()), syscall.LOCK_UN) }, nil
	}
}
