package store

import (
	"testing"
	"time"
)

// BenchmarkKeyFor measures one content-address computation. It is the
// unit the old code path paid up to four times per scheduled job
// (warmup Has, Get, Put, history stamping in NewRun), each call
// constructing a throwaway engine instance just to canonicalize its
// configuration — and the unit the scheduler now pays exactly once per
// job, threading the result through the Store interface.
func BenchmarkKeyFor(b *testing.B) {
	j := syntheticJob(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = KeyFor(j)
	}
}

// BenchmarkGetHitPrecomputedKey is the new cached-cell hot path: the
// key was computed once up front, each lookup is a map probe.
func BenchmarkGetHitPrecomputedKey(b *testing.B) {
	s, err := Open("")
	if err != nil {
		b.Fatal(err)
	}
	j := syntheticJob(0)
	key := s.Key(j)
	s.Put(key, fabricate(j, time.Millisecond))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(j, key); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkGetHitRecomputedKey is the old cached-cell hot path: every
// lookup recomputes the job's key first. The delta against
// BenchmarkGetHitPrecomputedKey is what each of the (previously up to
// four) per-job store interactions used to cost on top of the probe.
func BenchmarkGetHitRecomputedKey(b *testing.B) {
	s, err := Open("")
	if err != nil {
		b.Fatal(err)
	}
	j := syntheticJob(0)
	s.Put(s.Key(j), fabricate(j, time.Millisecond))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Get(j, s.Key(j)); !ok {
			b.Fatal("miss")
		}
	}
}
