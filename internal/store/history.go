package store

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"simbench/internal/report"
	"simbench/internal/sched"
)

// RunRecord is one completed matrix in the store's history: a
// timestamped, labelled set of cell records in matrix order, reusing
// the report package's machine-readable Record encoding (the same
// shape simbench -json emits).
type RunRecord struct {
	Time   time.Time       `json:"time"`
	Label  string          `json:"label"`
	Host   string          `json:"host"`
	Schema int             `json:"schema"`
	Cells  []report.Record `json:"cells"`
}

// NewRun flattens a completed matrix into a history record. Failed
// cells are included with their error text, mirroring FprintJSON, so
// history shows the whole matrix. Each cell is stamped with its
// content address, so history pins the blobs it references — simbase
// gc keeps exactly the blobs recent runs and baselines still name.
func NewRun(label string, results []sched.Result) RunRecord {
	rr := RunRecord{
		Time:   time.Now().UTC(),
		Label:  label,
		Host:   runtime.GOOS + "/" + runtime.GOARCH,
		Schema: SchemaVersion,
		Cells:  make([]report.Record, len(results)),
	}
	for i, r := range results {
		rr.Cells[i] = report.NewRecord(r)
		rr.Cells[i].Key = KeyFor(r.Job).String()
	}
	return rr
}

func (s *Store) historyPath() string { return filepath.Join(s.dir, "history.jsonl") }

// AppendHistory records a completed matrix as one JSONL line. It is a
// no-op for an in-process-only store, an empty matrix, or an aborted
// run (any cell cancelled): an aborted run would look like the latest
// complete run to `simbase save`, silently shrinking the baseline to
// the few cells that happened to finish.
func (s *Store) AppendHistory(label string, results []sched.Result) error {
	if s.dir == "" || len(results) == 0 {
		return nil
	}
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded) {
			return nil
		}
	}
	line, err := json.Marshal(NewRun(label, results))
	if err != nil {
		return fmt.Errorf("store: history: %w", err)
	}
	f, err := os.OpenFile(s.historyPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: history: %w", err)
	}
	_, werr := f.Write(append(line, '\n'))
	cerr := f.Close()
	if werr != nil || cerr != nil {
		return fmt.Errorf("store: history: %w", errors.Join(werr, cerr))
	}
	return nil
}

// History returns every recorded run in append order. A missing
// history file is an empty history, not an error; a malformed line
// (e.g. the torn tail of a process killed mid-append) is skipped
// rather than poisoning the whole history — unless nothing at all
// parses, which reports the first parse error.
func (s *Store) History() ([]RunRecord, error) {
	if s.dir == "" {
		return nil, nil
	}
	f, err := os.Open(s.historyPath())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: history: %w", err)
	}
	defer f.Close()
	var runs []RunRecord
	var firstBad error
	skipped := 0
	sc := bufio.NewScanner(f)
	// Full-matrix runs are large single lines; size the scanner for
	// them (the default cap is 64 KiB).
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rr RunRecord
		if err := json.Unmarshal([]byte(line), &rr); err != nil {
			if firstBad == nil {
				firstBad = err
			}
			skipped++
			continue
		}
		runs = append(runs, rr)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: history: %w", err)
	}
	if len(runs) == 0 && skipped > 0 {
		return nil, fmt.Errorf("store: history: no entry parses (%d malformed): %w", skipped, firstBad)
	}
	return runs, nil
}

// LatestWithPrior splits recorded history into the most recent run
// and everything recorded before it — the sample pool for the
// statistical gate, which must not include the run being judged. A
// non-empty label restricts both the latest run and the pool: the
// caller asked for that label's history, so off-label runs contribute
// neither the run under test nor its noise model.
func LatestWithPrior(runs []RunRecord, label string) (RunRecord, []RunRecord, error) {
	if label != "" {
		var filtered []RunRecord
		for _, rr := range runs {
			if rr.Label == label {
				filtered = append(filtered, rr)
			}
		}
		if len(filtered) == 0 {
			return RunRecord{}, nil, fmt.Errorf("store: no history entry labelled %q", label)
		}
		runs = filtered
	}
	if len(runs) == 0 {
		return RunRecord{}, nil, errors.New("store: history is empty")
	}
	return runs[len(runs)-1], runs[:len(runs)-1], nil
}

// LatestRun returns the most recent history entry, restricted to the
// given label when label is non-empty.
func (s *Store) LatestRun(label string) (RunRecord, error) {
	runs, err := s.History()
	if err != nil {
		return RunRecord{}, err
	}
	rr, _, err := LatestWithPrior(runs, label)
	return rr, err
}

func (s *Store) baselinePath(name string) (string, error) {
	if s.dir == "" {
		return "", errors.New("store: baselines need an on-disk store (-cache-dir)")
	}
	if name == "" || name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		return "", fmt.Errorf("store: invalid baseline name %q", name)
	}
	return filepath.Join(s.dir, "baselines", name+".json"), nil
}

// SaveBaseline stores a run under a name, for later diffing.
func (s *Store) SaveBaseline(name string, rr RunRecord) error {
	path, err := s.baselinePath(name)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rr, "", "  ")
	if err != nil {
		return fmt.Errorf("store: baseline: %w", err)
	}
	if err := atomicWrite(path, append(data, '\n')); err != nil {
		return fmt.Errorf("store: baseline: %w", err)
	}
	return nil
}

// LoadBaseline returns a previously saved baseline.
func (s *Store) LoadBaseline(name string) (RunRecord, error) {
	path, err := s.baselinePath(name)
	if err != nil {
		return RunRecord{}, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return RunRecord{}, fmt.Errorf("store: unknown baseline %q", name)
		}
		return RunRecord{}, fmt.Errorf("store: baseline: %w", err)
	}
	var rr RunRecord
	if err := json.Unmarshal(data, &rr); err != nil {
		return RunRecord{}, fmt.Errorf("store: baseline %q: %w", name, err)
	}
	return rr, nil
}

// Baselines lists saved baseline names, sorted.
func (s *Store) Baselines() ([]string, error) {
	if s.dir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "baselines"))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: baselines: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, ".json") && !strings.HasPrefix(name, ".") {
			names = append(names, strings.TrimSuffix(name, ".json"))
		}
	}
	sort.Strings(names)
	return names, nil
}
