package store

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"simbench/internal/report"
	"simbench/internal/sched"
)

// RunRecord is one completed matrix in the store's history: a
// timestamped, labelled set of cell records in matrix order, reusing
// the report package's machine-readable Record encoding (the same
// shape simbench -json emits).
type RunRecord struct {
	Time   time.Time       `json:"time"`
	Label  string          `json:"label"`
	Host   string          `json:"host"`
	Schema int             `json:"schema"`
	Cells  []report.Record `json:"cells"`
}

// NewRun flattens a completed matrix into a history record. Failed
// cells are included with their error text, mirroring FprintJSON, so
// history shows the whole matrix. Each cell is stamped with its
// content address, so history pins the blobs it references — simbase
// gc keeps exactly the blobs recent runs and baselines still name.
// Results from a store-backed scheduler run already carry their key
// (computed once per job); only results produced outside a store pay a
// fresh key computation here.
func NewRun(label string, results []sched.Result) RunRecord {
	rr := RunRecord{
		//simlint:allow determinism -- the run timestamp records when the measurement happened; it is metadata, never key material
		Time:   time.Now().UTC(),
		Label:  label,
		Host:   hostID(),
		Schema: SchemaVersion,
		Cells:  make([]report.Record, len(results)),
	}
	for i, r := range results {
		rr.Cells[i] = report.NewRecord(r)
		if r.Key != "" {
			rr.Cells[i].Key = r.Key
		} else {
			rr.Cells[i].Key = KeyFor(r.Job).String()
		}
	}
	return rr
}

func (s *Store) historyPath() string { return filepath.Join(s.dir, historyFileName) }

// LockedAppend appends one newline-terminated line to path under an
// exclusive lock, creating the file if needed. POSIX only guarantees
// O_APPEND writes atomic up to a small pipe-buffer-sized bound, and a
// full-matrix history line is megabytes — two unserialized processes
// appending concurrently can interleave and corrupt both lines. The
// lock serializes every history writer: local stores and the simstored
// /runs endpoint share this one append path.
func LockedAppend(path string, line []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	unlock, err := lockExclusive(f)
	if err != nil {
		f.Close()
		return err
	}
	buf := make([]byte, 0, len(line)+1)
	buf = append(buf, line...)
	if len(buf) == 0 || buf[len(buf)-1] != '\n' {
		buf = append(buf, '\n')
	}
	_, werr := f.Write(buf)
	uerr := unlock()
	cerr := f.Close()
	return errors.Join(werr, uerr, cerr)
}

// AppendHistory records a completed matrix as one JSONL line — locally
// when the store has a disk tier, and to the remote server when one is
// attached (so a fleet's history is the union of its hosts' runs). It
// is a no-op for a purely in-process store, an empty matrix, or an
// aborted run (any cell cancelled): an aborted run would look like the
// latest complete run to `simbase save`, silently shrinking the
// baseline to the few cells that happened to finish. A remote append
// failure does not lose the run — the local line has already landed —
// but is reported so the caller can warn.
func (s *Store) AppendHistory(label string, results []sched.Result) error {
	if (s.dir == "" && s.remote == nil) || len(results) == 0 {
		return nil
	}
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded) {
			return nil
		}
	}
	line, err := json.Marshal(NewRun(label, results))
	if err != nil {
		return fmt.Errorf("store: history: %w", err)
	}
	var errs []error
	if s.dir != "" {
		if err := LockedAppend(s.historyPath(), line); err != nil {
			errs = append(errs, fmt.Errorf("store: history: %w", err))
		}
	}
	if s.remote != nil {
		if err := s.remote.AppendRun(line); err != nil {
			errs = append(errs, fmt.Errorf("store: remote history: %w", err))
		}
	}
	return errors.Join(errs...)
}

// DecodeHistory parses a stream of newline-delimited RunRecord JSON
// with the package's standard malformed-entry tolerance — the exported
// face of decodeHistory, for the simstored server's index rebuild (the
// index must skip exactly the lines every client skips).
func DecodeHistory(r io.Reader) (runs []RunRecord, skipped int, err error) {
	runs, skipped, _, err = decodeHistory(r)
	return runs, skipped, err
}

// decodeHistory parses a stream of newline-delimited RunRecord JSON.
// A malformed entry — the torn tail of a process killed mid-append, a
// corrupted line of any size — is counted and skipped by resyncing to
// the next newline, never aborting the rest of the stream. Unlike a
// line scanner there is no maximum entry size: records decode straight
// off the stream, so one oversized run cannot poison the whole
// history. err reports only real read failures.
func decodeHistory(r io.Reader) (runs []RunRecord, skipped int, firstBad, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	// pending carries the decoder's unconsumed look-ahead across a
	// resync, so each rebuilt decoder layers exactly one bytes.Reader
	// over br — depth stays constant no matter how many entries are
	// malformed (a per-skip wrapper would make a badly corrupted file
	// quadratic to read).
	var pending []byte
	for {
		var pr *bytes.Reader
		var src io.Reader = br
		if len(pending) > 0 {
			pr = bytes.NewReader(pending)
			src = io.MultiReader(pr, br)
		}
		dec := json.NewDecoder(src)
		for {
			var rr RunRecord
			derr := dec.Decode(&rr)
			if derr == io.EOF {
				return
			}
			if derr == nil {
				runs = append(runs, rr)
				continue
			}
			skipped++
			if firstBad == nil {
				firstBad = derr
			}
			// Resync to the next newline. The stream not yet consumed
			// by the failed decoder is: its buffered look-ahead, then
			// whatever of the carried pending bytes it never pulled,
			// then br — search the in-memory parts first, fall through
			// to a constant-memory skip on br.
			buffered, rerr := io.ReadAll(dec.Buffered())
			if rerr != nil {
				err = rerr
				return
			}
			if pr != nil && pr.Len() > 0 {
				rest := make([]byte, pr.Len())
				pr.Read(rest)
				buffered = append(buffered, rest...)
			}
			if i := bytes.IndexByte(buffered, '\n'); i >= 0 {
				pending = append([]byte(nil), buffered[i+1:]...)
			} else {
				pending = nil
				ok, serr := skipPastNewline(br)
				if serr != nil {
					err = serr
					return
				}
				if !ok {
					// The malformed entry was the unterminated tail.
					return
				}
			}
			break // rebuild the decoder past the bad entry
		}
	}
}

// skipPastNewline discards input through the next newline in constant
// memory regardless of line length, reporting whether a newline was
// found before the stream ended.
func skipPastNewline(br *bufio.Reader) (bool, error) {
	for {
		_, err := br.ReadSlice('\n')
		switch err {
		case nil:
			return true, nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			return false, nil
		default:
			return false, err
		}
	}
}

// History returns every recorded run in append order — from the remote
// server when a remote tier is attached (the fleet's shared history),
// from the local disk tier otherwise. A missing history file is an
// empty history, not an error; a malformed entry (e.g. the torn tail
// of a process killed mid-append, or an entry of any size that does
// not parse) is skipped rather than poisoning the whole history —
// unless nothing at all parses, which reports the first parse error.
func (s *Store) History() ([]RunRecord, error) {
	if s.remote != nil {
		runs, err := s.remote.Runs()
		if err != nil {
			return nil, fmt.Errorf("store: remote history: %w", err)
		}
		return runs, nil
	}
	return s.localHistory()
}

// localHistory reads the disk tier's own history file, ignoring any
// attached remote. GC depends on this: it prunes *local* blobs, so it
// must judge them by what local history and baselines reference — on
// an active fleet the remote window is dominated by other hosts' runs
// and would wrongly condemn this host's cache.
func (s *Store) localHistory() ([]RunRecord, error) {
	if s.dir == "" {
		return nil, nil
	}
	f, err := os.Open(s.historyPath())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: history: %w", err)
	}
	defer f.Close()
	runs, skipped, firstBad, err := decodeHistory(f)
	if err != nil {
		return nil, fmt.Errorf("store: history: %w", err)
	}
	if len(runs) == 0 && skipped > 0 {
		return nil, fmt.Errorf("store: history: no entry parses (%d malformed): %w", skipped, firstBad)
	}
	return runs, nil
}

// LatestWithPrior splits recorded history into the most recent run
// and everything recorded before it — the sample pool for the
// statistical gate, which must not include the run being judged. A
// non-empty label restricts both the latest run and the pool: the
// caller asked for that label's history, so off-label runs contribute
// neither the run under test nor its noise model.
func LatestWithPrior(runs []RunRecord, label string) (RunRecord, []RunRecord, error) {
	if label != "" {
		var filtered []RunRecord
		for _, rr := range runs {
			if rr.Label == label {
				filtered = append(filtered, rr)
			}
		}
		if len(filtered) == 0 {
			return RunRecord{}, nil, fmt.Errorf("store: no history entry labelled %q", label)
		}
		runs = filtered
	}
	if len(runs) == 0 {
		return RunRecord{}, nil, errors.New("store: history is empty")
	}
	return runs[len(runs)-1], runs[:len(runs)-1], nil
}

// LatestRun returns the most recent history entry, restricted to the
// given label when label is non-empty.
func (s *Store) LatestRun(label string) (RunRecord, error) {
	runs, err := s.History()
	if err != nil {
		return RunRecord{}, err
	}
	rr, _, err := LatestWithPrior(runs, label)
	return rr, err
}

// ValidBaselineName reports whether name is usable as a baseline name:
// a plain path element that cannot escape the baselines directory.
// Shared with the simstored server, so a name the CLI accepts is a
// name the fleet store accepts.
func ValidBaselineName(name string) bool {
	return name != "" && name == filepath.Base(name) &&
		!strings.HasPrefix(name, ".") && !strings.ContainsAny(name, `/\`)
}

func (s *Store) baselinePath(name string) (string, error) {
	if s.dir == "" {
		return "", errors.New("store: baselines need an on-disk store (-cache-dir)")
	}
	if !ValidBaselineName(name) {
		return "", fmt.Errorf("store: invalid baseline name %q", name)
	}
	return filepath.Join(s.dir, baselinesDirName, name+".json"), nil
}

// SaveBaseline stores a run under a name, for later diffing — on the
// remote server when a remote tier is attached (so every host of the
// fleet gates against the same baseline), locally otherwise.
func (s *Store) SaveBaseline(name string, rr RunRecord) error {
	if s.remote != nil {
		if !ValidBaselineName(name) {
			return fmt.Errorf("store: invalid baseline name %q", name)
		}
		data, err := json.MarshalIndent(rr, "", "  ")
		if err != nil {
			return fmt.Errorf("store: baseline: %w", err)
		}
		if err := s.remote.SaveBaseline(name, append(data, '\n')); err != nil {
			return fmt.Errorf("store: remote baseline: %w", err)
		}
		return nil
	}
	path, err := s.baselinePath(name)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rr, "", "  ")
	if err != nil {
		return fmt.Errorf("store: baseline: %w", err)
	}
	if err := AtomicWrite(path, append(data, '\n')); err != nil {
		return fmt.Errorf("store: baseline: %w", err)
	}
	return nil
}

// LoadBaseline returns a previously saved baseline, from the remote
// server when a remote tier is attached.
func (s *Store) LoadBaseline(name string) (RunRecord, error) {
	if s.remote != nil {
		if !ValidBaselineName(name) {
			return RunRecord{}, fmt.Errorf("store: invalid baseline name %q", name)
		}
		rr, ok, err := s.remote.LoadBaseline(name)
		if err != nil {
			return RunRecord{}, fmt.Errorf("store: remote baseline: %w", err)
		}
		if !ok {
			return RunRecord{}, fmt.Errorf("store: unknown baseline %q", name)
		}
		return rr, nil
	}
	return s.localLoadBaseline(name)
}

// localLoadBaseline reads a baseline from the disk tier, ignoring any
// attached remote (see localHistory for why GC needs this).
func (s *Store) localLoadBaseline(name string) (RunRecord, error) {
	path, err := s.baselinePath(name)
	if err != nil {
		return RunRecord{}, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return RunRecord{}, fmt.Errorf("store: unknown baseline %q", name)
		}
		return RunRecord{}, fmt.Errorf("store: baseline: %w", err)
	}
	var rr RunRecord
	if err := json.Unmarshal(data, &rr); err != nil {
		return RunRecord{}, fmt.Errorf("store: baseline %q: %w", name, err)
	}
	return rr, nil
}

// Baselines lists saved baseline names, sorted — the remote server's
// when a remote tier is attached.
func (s *Store) Baselines() ([]string, error) {
	if s.remote != nil {
		names, err := s.remote.Baselines()
		if err != nil {
			return nil, fmt.Errorf("store: remote baselines: %w", err)
		}
		sort.Strings(names)
		return names, nil
	}
	return s.localBaselines()
}

// localBaselines lists the disk tier's baseline names, ignoring any
// attached remote (see localHistory for why GC needs this).
func (s *Store) localBaselines() ([]string, error) {
	if s.dir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, baselinesDirName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: baselines: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.Type().IsRegular() && strings.HasSuffix(name, ".json") && !strings.HasPrefix(name, ".") {
			names = append(names, strings.TrimSuffix(name, ".json"))
		}
	}
	sort.Strings(names)
	return names, nil
}
