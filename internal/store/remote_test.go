package store

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"simbench/internal/sched"
)

// fakeRemote is a minimal in-memory simstored stand-in for client
// failure-mode tests (the real server lives in internal/simstored,
// which tests against this client from its side).
type fakeRemote struct {
	mu      sync.Mutex
	objects map[string][]byte
	runs    []string
	corrupt bool // serve garbage object bodies
}

func newFakeRemote() *fakeRemote { return &fakeRemote{objects: make(map[string][]byte)} }

func (f *fakeRemote) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case strings.HasPrefix(r.URL.Path, "/objects/"):
		key := strings.TrimPrefix(r.URL.Path, "/objects/")
		switch r.Method {
		case http.MethodGet:
			if f.corrupt {
				w.Write([]byte("not json at all"))
				return
			}
			data, ok := f.objects[key]
			if !ok {
				http.NotFound(w, r)
				return
			}
			w.Write(data)
		case http.MethodPut:
			var buf strings.Builder
			b := make([]byte, 4096)
			for {
				n, err := r.Body.Read(b)
				buf.Write(b[:n])
				if err != nil {
					break
				}
			}
			f.objects[key] = []byte(buf.String())
			w.WriteHeader(http.StatusNoContent)
		}
	case r.URL.Path == "/runs" && r.Method == http.MethodPost:
		var buf strings.Builder
		b := make([]byte, 4096)
		for {
			n, err := r.Body.Read(b)
			buf.Write(b[:n])
			if err != nil {
				break
			}
		}
		f.runs = append(f.runs, buf.String())
		w.WriteHeader(http.StatusNoContent)
	case r.URL.Path == "/runs" && r.Method == http.MethodGet:
		for _, line := range f.runs {
			w.Write([]byte(line + "\n"))
		}
	default:
		http.NotFound(w, r)
	}
}

func (f *fakeRemote) object(key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.objects[key]
	return data, ok
}

func remoteStore(t *testing.T, dir, url string, opts ...RemoteOption) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRemoteTier(url, opts...)
	if err != nil {
		t.Fatal(err)
	}
	s.AttachRemote(rt)
	return s
}

// TestRemoteURLValidation: a remote URL that cannot work is rejected
// at flag time, not discovered one timeout per cell later.
func TestRemoteURLValidation(t *testing.T) {
	for _, bad := range []string{"", "ftp://host", "host:8347", "http://"} {
		if _, err := NewRemoteTier(bad); err == nil {
			t.Errorf("NewRemoteTier(%q) accepted", bad)
		}
	}
	if _, err := NewRemoteTier("http://localhost:8347/"); err != nil {
		t.Errorf("valid URL rejected: %v", err)
	}
}

// TestRemoteUnreachableAtStartup: a server that was never there
// degrades the store to local-only on first contact — lookups miss,
// puts and local round trips keep working, the run never fails, and
// the degradation is visible in Err.
func TestRemoteUnreachableAtStartup(t *testing.T) {
	// A closed port: connection refused, instantly.
	s := remoteStore(t, t.TempDir(), "http://127.0.0.1:1")

	j := syntheticJob(0)
	if _, ok := get(s, j); ok {
		t.Fatal("hit against an unreachable server")
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("degradation not surfaced: %v", err)
	}
	if !s.Remote().Down() {
		t.Error("tier not marked down after a failed lookup")
	}

	// Local operation is unaffected: put, get, provenance.
	put(s, fabricate(j, time.Millisecond))
	r, ok := get(s, j)
	if !ok || r.Kernel != time.Millisecond {
		t.Fatalf("local round trip while degraded: %v %v", r, ok)
	}
	ts := s.TierStats()
	if ts.Mem != 1 || ts.Misses != 1 {
		t.Errorf("stats while degraded = %+v", ts)
	}
	if err := s.Close(); err == nil {
		t.Error("Close lost the degradation reason")
	}
}

// TestRemoteDiesMidRun: a server that answers and then goes away
// degrades mid-run — later lookups fall back to local measurement
// without stalling on every cell, and uploads stop rather than error
// the run.
func TestRemoteDiesMidRun(t *testing.T) {
	fake := newFakeRemote()
	ts := httptest.NewServer(fake)

	s1 := remoteStore(t, t.TempDir(), ts.URL)
	j0, j1 := syntheticJob(0), syntheticJob(1)
	put(s1, fabricate(j0, time.Millisecond))
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := fake.object(KeyFor(j0).String()); !ok {
		t.Fatal("upload did not land while the server was alive")
	}

	// A second host sees the cell…
	s2 := remoteStore(t, t.TempDir(), ts.URL)
	if _, ok := get(s2, j0); !ok {
		t.Fatal("no remote hit while the server was alive")
	}
	// …then the server dies mid-run.
	ts.Close()
	if _, ok := get(s2, j1); ok {
		t.Fatal("hit from a dead server")
	}
	if !s2.Remote().Down() {
		t.Error("tier not down after the server died")
	}
	// Measurements continue locally; Put must not panic or block.
	put(s2, fabricate(j1, 2*time.Millisecond))
	if r, ok := get(s2, j1); !ok || r.Kernel != 2*time.Millisecond {
		t.Fatalf("local measurement after server death: %v %v", r, ok)
	}
	if err := s2.Close(); err == nil {
		t.Error("mid-run death not surfaced in Err")
	}
	st := s2.TierStats()
	if st.Remote != 1 || st.Mem != 1 {
		t.Errorf("stats after death = %+v", st)
	}
}

// TestRemoteCorruptBlob: a blob that does not parse is a miss plus a
// warning — not a failed run, and not a reason to stop talking to the
// server.
func TestRemoteCorruptBlob(t *testing.T) {
	fake := newFakeRemote()
	fake.corrupt = true
	ts := httptest.NewServer(fake)
	defer ts.Close()

	s := remoteStore(t, t.TempDir(), ts.URL)
	j := syntheticJob(0)
	if _, ok := get(s, j); ok {
		t.Fatal("corrupt blob served as a hit")
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt blob not surfaced: %v", err)
	}
	if s.Remote().Down() {
		t.Error("one corrupt blob marked the whole server down")
	}

	// The server recovers (stops serving garbage): the very next lookup
	// goes back to the network and hits.
	fake.mu.Lock()
	fake.corrupt = false
	fake.mu.Unlock()
	put(s, fabricate(j, time.Millisecond))
	if err := s.Close(); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatal("Close dropped the corrupt-blob warning")
	}
	s2 := remoteStore(t, t.TempDir(), ts.URL)
	defer s2.Close()
	if r, ok := get(s2, j); !ok || r.Kernel != time.Millisecond {
		t.Fatalf("recovered server not used: %v %v", r, ok)
	}
}

// TestRemoteSchemaMismatch: a well-formed blob from a foreign schema
// version is a miss, exactly like the disk tier treats it.
func TestRemoteSchemaMismatch(t *testing.T) {
	fake := newFakeRemote()
	ts := httptest.NewServer(fake)
	defer ts.Close()

	j := syntheticJob(0)
	foreign, _ := json.Marshal(blob{Schema: SchemaVersion + 1, Benchmark: j.Bench.Name})
	fake.mu.Lock()
	fake.objects[KeyFor(j).String()] = foreign
	fake.mu.Unlock()

	s := remoteStore(t, t.TempDir(), ts.URL)
	defer s.Close()
	if _, ok := get(s, j); ok {
		t.Fatal("foreign-schema blob served as a hit")
	}
}

// TestRemotePromotion: a remote hit is written through to the local
// disk tier, so the next cold process on this host never goes back to
// the network for it — and the hit keeps remote provenance even when
// later served from memory.
func TestRemotePromotion(t *testing.T) {
	fake := newFakeRemote()
	ts := httptest.NewServer(fake)
	defer ts.Close()

	j := syntheticJob(0)
	seed := remoteStore(t, t.TempDir(), ts.URL)
	put(seed, fabricate(j, time.Millisecond))
	if err := seed.Close(); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s := remoteStore(t, dir, ts.URL)
	if _, ok := get(s, j); !ok {
		t.Fatal("remote miss")
	}
	// Served again: from memory now, still attributed to remote.
	if _, ok := get(s, j); !ok {
		t.Fatal("promoted cell lost")
	}
	st := s.TierStats()
	if st.Remote != 2 || st.Disk != 0 || st.Mem != 0 {
		t.Errorf("provenance after promotion = %+v", st)
	}
	s.Close()

	// A fresh store on the same dir with no remote: the blob is local.
	local, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := get(local, j); !ok {
		t.Error("remote hit was not promoted to disk")
	}
}

// TestRemoteHistoryDegrades: with the server gone, History returns an
// error (callers warn and skip annotations) and AppendHistory still
// lands the local line — the run is never lost.
func TestRemoteHistoryDegrades(t *testing.T) {
	fake := newFakeRemote()
	ts := httptest.NewServer(fake)

	dir := t.TempDir()
	s := remoteStore(t, dir, ts.URL)
	defer s.Close()
	res := []sched.Result{fabricate(syntheticJob(0), time.Millisecond)}
	if err := s.AppendHistory("x", res); err != nil {
		t.Fatal(err)
	}
	runs, err := s.History()
	if err != nil || len(runs) != 1 {
		t.Fatalf("fleet history = %v, %v", runs, err)
	}

	ts.Close()
	s.Remote().down.Store(false) // forget the death to force a live probe
	if err := s.AppendHistory("y", res); err == nil {
		t.Error("remote append after death did not report")
	}
	if _, err := s.History(); err == nil {
		t.Error("remote history after death did not error")
	}
	// The local line landed both times: nothing was lost.
	local, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs, err = local.History()
	if err != nil || len(runs) != 2 {
		t.Fatalf("local fallback history = %d runs, %v", len(runs), err)
	}
}

// TestSchedulerDegradesWithDeadRemote runs a real matrix against a
// store whose remote died before the run: the matrix must complete
// measured locally — never fail — with the degradation in Err.
func TestSchedulerDegradesWithDeadRemote(t *testing.T) {
	s := remoteStore(t, t.TempDir(), "http://127.0.0.1:1")
	j := testJob(t)
	sch := sched.Scheduler{Workers: 2, Warmup: true, Store: s}
	results := sch.Run(context.Background(), []sched.Job{j})
	if err := sched.Errors(results); err != nil {
		t.Fatalf("matrix failed on a dead remote: %v", err)
	}
	if results[0].Cached {
		t.Error("cell claims cached with an empty local store and dead remote")
	}
	if err := s.Close(); err == nil {
		t.Error("dead remote not surfaced")
	}
	// The measurement is locally cached for the next run.
	if r, ok := get(s, j); !ok || !r.Cached {
		t.Error("measured cell not stored locally while degraded")
	}
}
