package store

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateTier is a tier whose load blocks until released, counting every
// call — the instrument for proving the slow path is single-flighted.
type gateTier struct {
	release chan struct{}
	loads   atomic.Int32
	blob    *blob
}

func (g *gateTier) name() Provenance { return ProvDisk }

func (g *gateTier) load(k Key) (*blob, []byte, error) {
	g.loads.Add(1)
	<-g.release
	return g.blob, nil, nil
}

func (g *gateTier) store(Key, *blob, []byte) {}
func (g *gateTier) fault() error             { return nil }

// TestLookupSingleFlight: a worker pool racing on one cold key
// performs exactly one slow-tier load; everyone else waits for it and
// shares the answer. (Before the tier refactor every worker read the
// same disk blob independently.)
func TestLookupSingleFlight(t *testing.T) {
	j := syntheticJob(0)
	r := fabricate(j, time.Millisecond)
	gt := &gateTier{release: make(chan struct{}), blob: newBlob(r)}
	s := &Store{mem: make(map[Key]memEntry), flight: make(map[Key]*flight)}
	s.chain = []tier{gt}

	const workers = 8
	var wg sync.WaitGroup
	hits := atomic.Int32{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok := get(s, j); ok {
				hits.Add(1)
			}
		}()
	}
	// Let every worker reach the lookup while the first load is still
	// in flight, then release it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.flightMu.Lock()
		inFlight := len(s.flight)
		s.flightMu.Unlock()
		if inFlight == 1 && gt.loads.Load() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lookup ever entered the slow path")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // give the rest time to pile onto the flight
	close(gt.release)
	wg.Wait()

	if got := gt.loads.Load(); got != 1 {
		t.Errorf("slow tier loaded %d times for one key, want 1", got)
	}
	if hits.Load() != workers {
		t.Errorf("%d of %d workers got the shared result", hits.Load(), workers)
	}
	// The flight table is drained; nothing leaks.
	s.flightMu.Lock()
	leaked := len(s.flight)
	s.flightMu.Unlock()
	if leaked != 0 {
		t.Errorf("%d flights leaked", leaked)
	}
}

// TestMissSingleFlightDoesNotCache: a single-flighted miss must not
// poison later lookups — once the key exists, it is found.
func TestMissSingleFlightDoesNotCache(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := syntheticJob(1)
	if _, ok := get(s, j); ok {
		t.Fatal("hit on empty store")
	}
	// Another process writes the cell.
	other, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	put(other, fabricate(j, time.Millisecond))
	if _, ok := get(s, j); !ok {
		t.Error("earlier miss cached; new blob invisible")
	}
}

// TestProvenanceCounters pins the attribution rules: fresh put = mem,
// disk reload = disk, and Has never moves any counter even though it
// promotes.
func TestProvenanceCounters(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := syntheticJob(2)
	put(s1, fabricate(j, time.Millisecond))
	if _, ok := get(s1, j); !ok {
		t.Fatal("miss after put")
	}
	if st := s1.TierStats(); st.Mem != 1 || st.Disk != 0 || st.Remote != 0 {
		t.Errorf("in-process provenance = %+v", st)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Has promotes disk→mem but counts nothing.
	if !has(s2, j) {
		t.Fatal("Has missed a stored cell")
	}
	if st := s2.TierStats(); st.Hits()+st.Misses != 0 {
		t.Errorf("Has moved counters: %+v", st)
	}
	// The Get that follows is served from memory but attributed to disk,
	// where the measurement actually came from.
	if _, ok := get(s2, j); !ok {
		t.Fatal("miss after Has")
	}
	if st := s2.TierStats(); st.Disk != 1 || st.Mem != 0 {
		t.Errorf("promoted provenance = %+v", st)
	}
}
