package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// orphanAge is how stale an atomicWrite temp file must be before gc
// treats it as crash debris: old enough that no live writer can still
// be about to rename it, young enough that debris never outlives two
// gc passes.
const orphanAge = time.Hour

// blobGrace is how old an unreferenced blob must be before gc may
// prune it. It is much longer than orphanAge because a run references
// its blobs only when its history entry lands at run end — and a
// paper-scale run (-scale 1) takes hours, during which every blob it
// has written so far is unreferenced. A day covers any plausible run.
const blobGrace = 24 * time.Hour

// GCStats reports what a garbage-collection pass did (or, for a dry
// run, would do).
type GCStats struct {
	// KeepRuns is the effective history window: blobs referenced by
	// the last KeepRuns runs (any label) or by any saved baseline are
	// kept.
	KeepRuns int
	// RefKeys is how many distinct blob keys that window references.
	RefKeys int
	// Kept and Pruned count blobs retained and removed; PrunedBytes is
	// the disk space the pruned blobs occupied.
	Kept, Pruned int
	PrunedBytes  int64
	// Orphans counts stale atomicWrite temp files reclaimed — debris
	// of writers killed between create and rename.
	Orphans int
	// Young counts unreferenced blobs left alone because they are too
	// recent to judge: a concurrent run writes blobs cell by cell and
	// appends its history entry only at the end, so a fresh
	// unreferenced blob is more likely a run in flight than garbage.
	Young int
	// DryRun records that nothing was actually deleted.
	DryRun bool
}

func (g GCStats) String() string {
	verb := "pruned"
	if g.DryRun {
		verb = "would prune"
	}
	s := fmt.Sprintf("%s %d blobs (%d bytes), kept %d referenced by the last %d runs and baselines (%d keys)",
		verb, g.Pruned, g.PrunedBytes, g.Kept, g.KeepRuns, g.RefKeys)
	if g.Orphans > 0 {
		s += fmt.Sprintf("; %d orphaned temp files", g.Orphans)
	}
	if g.Young > 0 {
		s += fmt.Sprintf("; %d unreferenced blobs too recent to judge", g.Young)
	}
	return s
}

// GC prunes result blobs unreferenced by recent history: a blob
// survives only if one of the last keepRuns recorded runs, or any
// saved baseline, names its key. Runs recorded before cells carried
// keys pin nothing — their blobs are reclaimed once they age out of
// every baseline. With dryRun the pass only counts; nothing is
// deleted. keepRuns <= 0 means 10.
//
// GC never touches history or baselines themselves, only the object
// store; a pruned cell simply re-measures on its next run.
func (s *Store) GC(keepRuns int, dryRun bool) (GCStats, error) {
	if s.dir == "" {
		return GCStats{}, errors.New("store: gc needs an on-disk store (-cache-dir)")
	}
	if keepRuns <= 0 {
		keepRuns = 10
	}
	st := GCStats{KeepRuns: keepRuns, DryRun: dryRun}

	// GC prunes *local* blobs, so references come from *local* history
	// and baselines even when a remote tier is attached: the fleet's
	// shared window is dominated by other hosts' runs and would wrongly
	// condemn this host's recently-referenced cache.
	runs, err := s.localHistory()
	if err != nil {
		return st, err
	}
	if len(runs) > keepRuns {
		runs = runs[len(runs)-keepRuns:]
	}
	refs := make(map[string]bool)
	for _, rr := range runs {
		for _, c := range rr.Cells {
			if c.Key != "" {
				refs[c.Key] = true
			}
		}
	}
	names, err := s.localBaselines()
	if err != nil {
		return st, err
	}
	for _, name := range names {
		rr, err := s.localLoadBaseline(name)
		if err != nil {
			return st, err
		}
		for _, c := range rr.Cells {
			if c.Key != "" {
				refs[c.Key] = true
			}
		}
	}
	st.RefKeys = len(refs)

	root := filepath.Join(s.dir, objectsDirName)
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() {
			return nil
		}
		if strings.HasPrefix(d.Name(), ".tmp-") {
			// A writer killed between CreateTemp and Rename leaves its
			// temp file behind forever; reclaim it once it is clearly
			// not a live write in progress.
			//simlint:allow determinism -- gc age grace is operational, not rendered: orphan reclaim must compare against the real clock
			if info, ierr := d.Info(); ierr == nil && time.Since(info.ModTime()) > orphanAge {
				st.Orphans++
				if !dryRun {
					os.Remove(path)
				}
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".json") {
			return nil
		}
		key := strings.TrimSuffix(d.Name(), ".json")
		if refs[key] {
			st.Kept++
			return nil
		}
		info, ierr := d.Info()
		//simlint:allow determinism -- gc blob grace is operational, not rendered: in-flight-run detection needs the real clock
		if ierr == nil && time.Since(info.ModTime()) <= blobGrace {
			// An in-flight run's blobs are unreferenced until its
			// history entry lands at run end; blobs younger than the
			// longest plausible run are not yet judgeable.
			st.Young++
			return nil
		}
		if ierr == nil {
			st.PrunedBytes += info.Size()
		}
		st.Pruned++
		if dryRun {
			return nil
		}
		if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
			// A concurrent gc beat us to this blob; the end state —
			// blob gone — is what this pass wanted anyway.
			return err
		}
		s.dropMem(key)
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("store: gc: %w", err)
	}
	return st, nil
}

// dropMem evicts a pruned blob from the in-process layer, so a live
// store does not keep serving what gc just deleted from disk.
func (s *Store) dropMem(hexKey string) {
	k, ok := ParseKey(hexKey)
	if !ok {
		return
	}
	s.mu.Lock()
	delete(s.mem, k)
	s.mu.Unlock()
}
