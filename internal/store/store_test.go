package store

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"simbench/internal/arch"
	"simbench/internal/bench"
	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/engine/dbt"
	"simbench/internal/engine/detailed"
	"simbench/internal/engine/direct"
	"simbench/internal/engine/interp"
	"simbench/internal/report"
	"simbench/internal/sched"
	"simbench/internal/versions"
)

// put, get and has are job-keyed conveniences for tests: they compute
// the key the way a scheduler would (once, via the Store's Key method)
// and thread it through.
func put(s *Store, r sched.Result) { s.Put(s.Key(r.Job), r) }

func get(s *Store, j sched.Job) (sched.Result, bool) { return s.Get(j, s.Key(j)) }

func has(s *Store, j sched.Job) bool { return s.Has(s.Key(j)) }

func testJob(t *testing.T) sched.Job {
	t.Helper()
	b, err := bench.ByName("ctrl.intrapage-direct")
	if err != nil {
		t.Fatal(err)
	}
	rel := versions.Latest()
	return sched.Job{
		Bench:   b,
		Engine:  sched.Engine{Name: rel.Name, New: func() engine.Engine { return rel.Engine() }},
		Arch:    arch.ARM{},
		Iters:   64,
		Repeats: 2,
	}
}

func dbtJob(j sched.Job, cfg dbt.Config) sched.Job {
	j.Engine = sched.Engine{Name: cfg.Name, New: func() engine.Engine { return dbt.New(cfg) }}
	return j
}

// TestKeyDistinctness flips every input that determines a cell's
// outcome — each dbt.Config field, iters, repeats, arch, benchmark —
// and checks that each flip lands in a distinct cell.
func TestKeyDistinctness(t *testing.T) {
	base := testJob(t)
	cfg := versions.Latest().Config

	keys := map[Key]string{KeyFor(base): "base"}
	add := func(label string, j sched.Job) {
		t.Helper()
		k := KeyFor(j)
		if prev, dup := keys[k]; dup {
			t.Errorf("%s collides with %s:\n%s", label, prev, Fingerprint(j))
		}
		keys[k] = label
	}

	muts := map[string]func(*dbt.Config){
		"Name":              func(c *dbt.Config) { c.Name = "edited" },
		"OptLevel":          func(c *dbt.Config) { c.OptLevel = 1 },
		"Chain":             func(c *dbt.Config) { c.Chain = dbt.ChainNone },
		"LookupDepth":       func(c *dbt.Config) { c.LookupDepth = 2 },
		"LazyFlush":         func(c *dbt.Config) { c.LazyFlush = !c.LazyFlush },
		"TLBBits":           func(c *dbt.Config) { c.TLBBits = 8 },
		"VictimTLB":         func(c *dbt.Config) { c.VictimTLB = !c.VictimTLB },
		"DataFaultFastPath": func(c *dbt.Config) { c.DataFaultFastPath = !c.DataFaultFastPath },
		"ExcSyncWords":      func(c *dbt.Config) { c.ExcSyncWords++ },
		"HelperSaveWords":   func(c *dbt.Config) { c.HelperSaveWords++ },
		"WalkExtraChecks":   func(c *dbt.Config) { c.WalkExtraChecks++ },
		"BlockCap":          func(c *dbt.Config) { c.BlockCap++ },
		"Superblock":        func(c *dbt.Config) { c.Superblock = 8 },
		"ChainLimit":        func(c *dbt.Config) { c.ChainLimit = 512 },
	}
	// Guard: a field added to dbt.Config must get a mutation here (the
	// %+v fingerprint picks it up automatically, the test should too).
	if n := reflect.TypeOf(dbt.Config{}).NumField(); n != len(muts) {
		t.Errorf("dbt.Config has %d fields but the test mutates %d; add the new field", n, len(muts))
	}
	for label, mut := range muts {
		c := cfg
		mut(&c)
		add("cfg."+label, dbtJob(base, c))
	}

	iters := base
	iters.Iters = 128
	add("iters", iters)
	repeats := base
	repeats.Repeats = 3
	add("repeats", repeats)
	x86 := base
	x86.Arch = arch.X86{}
	add("arch", x86)
	other := base
	b2, err := bench.ByName("mem.hot")
	if err != nil {
		t.Fatal(err)
	}
	other.Bench = b2
	add("bench", other)
	for _, c := range []int{2, 4} {
		smp := base
		smp.Cores = c
		add(fmt.Sprintf("cores=%d", c), smp)
	}

	// Every modelled release lands in its own cell (each carries its
	// release tag in Config.Name, so even config-identical stable
	// branches stay distinct).
	relKeys := map[Key]string{}
	for _, rel := range versions.All() {
		rel := rel
		j := base
		j.Engine = sched.Engine{Name: rel.Name, New: func() engine.Engine { return rel.Engine() }}
		k := KeyFor(j)
		if prev, dup := relKeys[k]; dup {
			t.Errorf("release %s collides with %s", rel.Name, prev)
		}
		relKeys[k] = rel.Name
	}

	// The non-DBT platforms are distinct from the DBT cells above and
	// from each other ("dbt" itself is the base job's configuration).
	for name, mk := range map[string]func() engine.Engine{
		"interp":   func() engine.Engine { return interp.New() },
		"detailed": func() engine.Engine { return detailed.New() },
		"virt":     func() engine.Engine { return direct.New(direct.ModeVirt) },
		"native":   func() engine.Engine { return direct.New(direct.ModeNative) },
	} {
		j := base
		j.Engine = sched.Engine{Name: name, New: mk}
		add("platform."+name, j)
	}
}

// TestKeySharesAcrossDisplayNames pins the deliberate dedup: the
// Fig. 7 "dbt" column and the sweep's "v2.5.0-rc2" column are the same
// configuration, so they are the same cell regardless of the
// scheduler-level display name.
func TestKeySharesAcrossDisplayNames(t *testing.T) {
	j := testJob(t) // named after the release
	asDBT := j
	asDBT.Engine = sched.Engine{Name: "dbt", New: func() engine.Engine { return versions.Latest().Engine() }}
	if KeyFor(j) != KeyFor(asDBT) {
		t.Errorf("same configuration under two display names got two keys:\n%s\n%s",
			Fingerprint(j), Fingerprint(asDBT))
	}
}

// TestKeyNormalization: iters<=0 means the benchmark's paper count and
// repeats<=0 means one repeat, matching Execute's semantics.
func TestKeyNormalization(t *testing.T) {
	j := testJob(t)
	j.Iters = 0
	j.Repeats = 0
	explicit := j
	explicit.Iters = j.Bench.PaperIters
	explicit.Repeats = 1
	if KeyFor(j) != KeyFor(explicit) {
		t.Error("defaulted iters/repeats key differs from the explicit equivalent")
	}
}

// TestKeySingleCoreUnchanged pins the SMP compatibility contract:
// unset and explicit single-core jobs share one cell, and their
// fingerprints carry no cores line at all — so every pre-SMP key, and
// every blob stored under one, stays valid verbatim. A multi-core job
// gets the line and a distinct cell.
func TestKeySingleCoreUnchanged(t *testing.T) {
	j := testJob(t)
	one := j
	one.Cores = 1
	if KeyFor(j) != KeyFor(one) {
		t.Error("explicit Cores=1 key differs from the unset equivalent")
	}
	if strings.Contains(Fingerprint(one), "cores=") {
		t.Errorf("single-core fingerprint must omit the cores line:\n%s", Fingerprint(one))
	}
	smp := j
	smp.Cores = 2
	if !strings.Contains(Fingerprint(smp), "cores=2\n") {
		t.Errorf("2-core fingerprint must carry cores=2:\n%s", Fingerprint(smp))
	}
	if KeyFor(smp) == KeyFor(j) {
		t.Error("2-core job shares a cell with the single-core job")
	}
}

// TestKeySuperblockUnchanged pins the superblock compatibility
// contract, the same shape as the cores line: a config that leaves
// superblocks off keeps the exact pre-superblock fingerprint encoding
// (pinned here as a literal, so a refactor cannot silently move every
// existing key), while any effective superblock setting appends new key
// material and lands in a distinct cell.
func TestKeySuperblockUnchanged(t *testing.T) {
	base := testJob(t)
	j := dbtJob(base, dbt.DefaultConfig())
	const legacy = "engine=dbt {Name:default OptLevel:2 Chain:checked LookupDepth:3" +
		" LazyFlush:true TLBBits:7 VictimTLB:true DataFaultFastPath:true" +
		" ExcSyncWords:64 HelperSaveWords:48 WalkExtraChecks:88 BlockCap:64}\n"
	if fp := Fingerprint(j); !strings.Contains(fp, legacy) {
		t.Errorf("default dbt fingerprint no longer matches the pre-superblock encoding:\n%s", fp)
	}

	// Superblock<=1 is off (the translator builds plain basic blocks),
	// so it must share the default cell, not invalidate it.
	off := dbt.DefaultConfig()
	off.Superblock = 1
	if KeyFor(dbtJob(base, off)) != KeyFor(j) {
		t.Error("Superblock=1 (off) moved the default-config key")
	}

	on := dbt.DefaultConfig()
	on.Superblock = 8
	fp := Fingerprint(dbtJob(base, on))
	if !strings.Contains(fp, " superblock=8 chainlimit=0") {
		t.Errorf("superblock config fingerprint is missing the new key material:\n%s", fp)
	}
	if KeyFor(dbtJob(base, on)) == KeyFor(j) {
		t.Error("superblock config shares a cell with the default config")
	}
}

// TestRoundTripRecord measures one real cell, stores it, reloads it
// through a second Store on the same directory (a fresh process, in
// effect), and checks the reconstructed result flattens to a
// byte-identical report.Record — apart from the Cached provenance
// flag, which a reload sets by design (the noise model relies on it
// to keep replays out of the sample pool).
func TestRoundTripRecord(t *testing.T) {
	dir := t.TempDir()
	j := testJob(t)
	r := sched.Execute(context.Background(), j)
	if r.Err != nil {
		t.Fatal(r.Err)
	}

	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	put(s1, r)
	if err := s1.Err(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := get(s2, j)
	if !ok {
		t.Fatal("stored cell missing from a second store on the same dir")
	}
	if !got.Cached {
		t.Error("reloaded result not marked Cached")
	}
	if got.Kernel != r.Kernel {
		t.Errorf("kernel %v != %v", got.Kernel, r.Kernel)
	}

	wantRecs := report.Records([]sched.Result{r})
	haveRecs := report.Records([]sched.Result{got})
	if !haveRecs[0].Cached {
		t.Error("reloaded record not marked cached")
	}
	// Everything except provenance must round-trip exactly.
	haveRecs[0].Cached = wantRecs[0].Cached
	var want, have bytes.Buffer
	if err := report.FprintRecords(&want, wantRecs); err != nil {
		t.Fatal(err)
	}
	if err := report.FprintRecords(&have, haveRecs); err != nil {
		t.Fatal(err)
	}
	if want.String() != have.String() {
		t.Errorf("record round trip not byte-identical:\nmeasured: %s\ncached:   %s", want.String(), have.String())
	}
	if got.Run.Stats != r.Run.Stats {
		t.Errorf("stats round trip: %+v != %+v", got.Run.Stats, r.Run.Stats)
	}
	if got.Run.Exc != r.Run.Exc {
		t.Errorf("exception counters round trip: %v != %v", got.Run.Exc, r.Run.Exc)
	}

	hits, misses := s2.Stats()
	if hits != 1 || misses != 0 {
		t.Errorf("stats = %d hits %d misses, want 1/0", hits, misses)
	}
	if !has(s2, j) {
		t.Error("Has is false for a stored job")
	}
	if h, m := s2.Stats(); h != hits || m != misses {
		t.Error("Has moved the lookup counters")
	}
}

// TestFailedCellsNotStored: error results must never populate the
// store, or a transient failure would be replayed forever.
func TestFailedCellsNotStored(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(t)
	put(s, sched.Result{Job: j, Err: fmt.Errorf("boom")})
	if has(s, j) {
		t.Error("failed cell was stored")
	}
}

// fabricate builds a synthetic successful result for concurrency and
// history tests without running a guest.
func fabricate(j sched.Job, kernel time.Duration) sched.Result {
	return sched.Result{
		Job:    j,
		Kernel: kernel,
		Run: &core.Result{
			Benchmark: j.Bench,
			Engine:    "interp",
			Arch:      j.Arch.Name(),
			Iters:     j.Iters,
			Kernel:    kernel,
			Total:     2 * kernel,
			Stats:     engine.Stats{Instructions: uint64(j.Iters) * 10},
		},
	}
}

func syntheticJob(i int) sched.Job {
	return sched.Job{
		Bench:  &core.Benchmark{Name: fmt.Sprintf("synthetic.%d", i), PaperIters: 100},
		Engine: sched.Engine{Name: "interp", New: func() engine.Engine { return interp.New() }},
		Arch:   arch.ARM{},
		Iters:  int64(i + 1),
	}
}

// TestConcurrentAccess hammers one cache directory from two Store
// instances (standing in for two processes) with concurrent writers
// and readers; run under -race this is the concurrency contract.
func TestConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const cells = 24
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := s1
			if w%2 == 1 {
				st = s2
			}
			for i := w; i < cells; i += 4 {
				j := syntheticJob(i)
				put(st, fabricate(j, time.Duration(i+1)*time.Millisecond))
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < cells; i++ {
				j := syntheticJob(i)
				if r, ok := get(s2, j); ok && r.Kernel != time.Duration(i+1)*time.Millisecond {
					t.Errorf("cell %d: kernel %v", i, r.Kernel)
				}
				has(s1, j)
			}
		}()
	}
	wg.Wait()
	if err := s1.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Err(); err != nil {
		t.Fatal(err)
	}

	// Every cell is now visible to a third, cold store.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cells; i++ {
		j := syntheticJob(i)
		r, ok := get(s3, j)
		if !ok {
			t.Fatalf("cell %d missing after concurrent writes", i)
		}
		if r.Kernel != time.Duration(i+1)*time.Millisecond {
			t.Errorf("cell %d: kernel %v", i, r.Kernel)
		}
	}
}

// TestSchedulerIntegration runs a real matrix twice against the same
// cache directory through separate Store instances and checks the
// second run is 100 % hits with byte-identical records.
func TestSchedulerIntegration(t *testing.T) {
	dir := t.TempDir()
	b1, err := bench.ByName("ctrl.intrapage-direct")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := bench.ByName("mem.hot")
	if err != nil {
		t.Fatal(err)
	}
	m := sched.Matrix{
		Arches:  []arch.Support{arch.ARM{}},
		Benches: []*core.Benchmark{b1, b2},
		Engines: []sched.Engine{{Name: "interp", New: func() engine.Engine { return interp.New() }}},
		Iters:   func(*core.Benchmark) int64 { return 8 },
	}
	jobs := m.Jobs()

	run := func() ([]sched.Result, uint64, uint64) {
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := sched.Scheduler{Workers: 2, Warmup: true, Store: st}
		results := s.Run(context.Background(), jobs)
		if err := sched.Errors(results); err != nil {
			t.Fatal(err)
		}
		if err := st.Err(); err != nil {
			t.Fatal(err)
		}
		h, m := st.Stats()
		return results, h, m
	}

	first, h1, m1 := run()
	if h1 != 0 || m1 != uint64(len(jobs)) {
		t.Errorf("first run: %d hits %d misses, want 0/%d", h1, m1, len(jobs))
	}
	second, h2, m2 := run()
	if h2 != uint64(len(jobs)) || m2 != 0 {
		t.Errorf("second run: %d hits %d misses, want %d/0", h2, m2, len(jobs))
	}
	for _, r := range second {
		if !r.Cached {
			t.Errorf("%s: not cached on second run", r.Job)
		}
	}

	// The measurements round-trip exactly; only the Cached provenance
	// flag distinguishes the replayed run's records.
	firstRecs := report.Records(first)
	secondRecs := report.Records(second)
	for i := range secondRecs {
		if !secondRecs[i].Cached {
			t.Errorf("%s: second-run record not marked cached", secondRecs[i].Benchmark)
		}
		secondRecs[i].Cached = firstRecs[i].Cached
	}
	var a, b bytes.Buffer
	if err := report.FprintRecords(&a, firstRecs); err != nil {
		t.Fatal(err)
	}
	if err := report.FprintRecords(&b, secondRecs); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("cached run records differ from measured run:\n%s\n%s", a.String(), b.String())
	}
}
