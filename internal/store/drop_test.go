package store

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestWritebackDropsAreCounted pins the drop accounting end to end:
// with the uploader stalled and the bounded queue full, further
// uploads are shed — and the shed count must reach Dropped(),
// TierStats, fault (so Err and the degrade warning carry the tally),
// and the FprintStats drop line. Before this accounting, a queue-full
// store lost uploads with at most a count-free first-drop note, and
// not even that when a transport failure had already claimed the
// recorded-error slot.
func TestWritebackDropsAreCounted(t *testing.T) {
	block := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPut {
			once.Do(func() { close(first) })
			<-block // stall the uploader so the queue backs up
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	rt, err := NewRemoteTier(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"schema":1}`)
	var k Key
	// One upload stalls in flight; wait for it so the remaining sends
	// deterministically fill the channel rather than racing the
	// uploader's receive.
	rt.store(k, nil, payload)
	<-first
	for i := 0; i < remoteQueueDepth; i++ {
		rt.store(k, nil, payload)
	}
	const extra = 3
	for i := 0; i < extra; i++ {
		rt.store(k, nil, payload)
	}
	if got := rt.Dropped(); got != extra {
		t.Fatalf("Dropped() = %d, want %d", got, extra)
	}
	close(block)
	rt.Close()

	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	s.AttachRemote(rt)
	if got := s.TierStats().Dropped; got != extra {
		t.Errorf("TierStats().Dropped = %d, want %d", got, extra)
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "3 uploads dropped") {
		t.Errorf("Err() = %v, want the drop tally", err)
	}

	var sb strings.Builder
	FprintStats(&sb, "simtest", s)
	out := sb.String()
	if !strings.Contains(out, "simtest: cache: 3 uploads dropped (write-back queue full)") {
		t.Errorf("FprintStats missing drop line:\n%s", out)
	}
	if !strings.Contains(out, "cache degraded:") || !strings.Contains(out, "3 uploads dropped") {
		t.Errorf("degrade warning missing drop tally:\n%s", out)
	}
}

// TestDropsSurviveEarlierDegrade: a transport failure recorded first
// must not mask the drop tally — fault joins both.
func TestDropsSurviveEarlierDegrade(t *testing.T) {
	rt, err := NewRemoteTier("http://127.0.0.1:1") // nothing listens here
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	var k Key
	if b, _, _ := rt.load(k); b != nil {
		t.Fatal("load from dead server returned a blob")
	}
	if !rt.Down() {
		t.Fatal("tier not degraded after transport failure")
	}
	rt.dropped.Add(2) // simulate queue-full sheds after the degrade
	err = rt.fault()
	if err == nil || !strings.Contains(err.Error(), "unreachable") || !strings.Contains(err.Error(), "2 uploads dropped") {
		t.Errorf("fault() = %v, want both the transport failure and the drop tally", err)
	}
}
