package store

import (
	"fmt"
	"hash/fnv"

	"simbench/internal/report"
	"simbench/internal/stats"
)

// StatGate configures the variance-aware regression gate: how much
// history a cell needs before its noise band is trusted, how the band
// is computed, and the fixed threshold that remains as fallback (too
// little history) and floor (a degenerate band — identical history —
// is widened to median±Threshold rather than flagging any nonzero
// delta). The zero value fills to usable defaults.
type StatGate struct {
	// Threshold is the relative slowdown the fallback/floor gate
	// tolerates; <=0 means 0.10.
	Threshold float64
	// MinHistory is the minimum number of measured historical samples
	// before a cell is gated statistically; cells with fewer fall back
	// to the fixed threshold. <=0 means 5.
	MinHistory int
	// Resamples is the bootstrap resample count; 0 means 1000,
	// negative disables the bootstrap.
	Resamples int
	// Seed seeds the deterministic bootstrap; each cell derives its
	// own stream from it, so bands are reproducible run to run.
	Seed int64
	// Widen multiplies the MAD-based spread margin; <=0 means 3.
	Widen float64
	// Window bounds each cell's noise model to its most recent fresh
	// samples: an accepted performance change would otherwise leave a
	// bimodal history whose inflated band hides real regressions
	// forever. Counted per cell in genuine measurements — cached-only
	// reruns and other tools' interleaved runs cannot push a cell's
	// real history out of the window. <=0 means 20 samples.
	Window int
}

func (g StatGate) fill() StatGate {
	if g.Threshold <= 0 {
		g.Threshold = 0.10
	}
	if g.MinHistory <= 0 {
		g.MinHistory = 5
	}
	switch {
	case g.Resamples == 0:
		g.Resamples = 1000
	case g.Resamples < 0:
		g.Resamples = 0
	}
	if g.Widen <= 0 {
		g.Widen = 3
	}
	if g.Window <= 0 {
		g.Window = 20
	}
	return g
}

// Pool bounds one cell's fresh-sample history (as built by Samples)
// to the gate's recency window — the one definition of "the samples
// the gate sees", shared by diff, table annotation and simbase show.
func (g StatGate) Pool(xs []float64) []float64 {
	g = g.fill()
	if len(xs) > g.Window {
		return xs[len(xs)-g.Window:]
	}
	return xs
}

// seedFor derives a per-cell bootstrap seed, so each cell is its own
// deterministic stream: reordering the matrix or gating a subset never
// moves another cell's band.
func (g StatGate) seedFor(id string) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return g.Seed ^ int64(h.Sum64())
}

// Band summarizes one cell's samples under the gate's options, with
// the cell's own deterministic bootstrap stream. Unlike NoiseLookup it
// answers for any history length — simbase show uses it to print the
// model of a cell that is still too young to gate.
func (g StatGate) Band(id string, xs []float64) *stats.Band {
	g = g.fill()
	b := stats.Summarize(xs, stats.Options{
		Resamples: g.Resamples,
		Seed:      g.seedFor(id),
		Widen:     g.Widen,
	})
	return &b
}

// CellID keys a record by everything that identifies a cell within a
// run: display coordinates and scale. History aggregation, diffs and
// noise bands all group by it — "did my simulator get slower" compares
// like-named columns across time.
func CellID(r report.Record) string { return cellID(r) }

// CellName renders a record's cell the way diff output names cells:
// arch/benchmark/engine@iters, with an xN suffix for multi-repeat
// cells. simbase show matches its argument against this form.
func CellName(r report.Record) string {
	s := fmt.Sprintf("%s/%s/%s@%d", r.Arch, r.Benchmark, r.Engine, r.Iters)
	if r.Repeats > 1 {
		s += fmt.Sprintf("x%d", r.Repeats)
	}
	return s
}

// FreshSample reports whether a record contributes to the noise
// model: a genuine measurement, not an error and not a cached replay —
// a cache hit re-records a measurement already pooled by the run that
// made it, and counting it again would collapse the band around
// whichever value happened to be cached (and false-flag drift toward
// it). show and the gate share this one predicate so they can never
// disagree about what counts as evidence.
func FreshSample(r report.Record) bool { return measured(r) && !r.Cached }

// Samples gathers each cell's fresh kernel-seconds history across
// runs (see FreshSample), keyed by CellID, in run order.
func Samples(runs []RunRecord) map[string][]float64 {
	out := make(map[string][]float64)
	for _, rr := range runs {
		for _, c := range rr.Cells {
			if FreshSample(c) {
				out[cellID(c)] = append(out[cellID(c)], c.KernelSeconds)
			}
		}
	}
	return out
}

// NoiseLookup returns a lazily-memoized per-record band lookup over
// the gate's windowed sample pool, the shape table renderers and JSON
// annotation want; records with fewer than MinHistory fresh samples
// return nil — a band from two points is not a noise model. Bands are
// computed on first request per cell, so a small matrix annotated
// against a large shared history (every nightly label, every scale)
// pays the bootstrap only for the cells it actually renders. Not safe
// for concurrent use.
func NoiseLookup(runs []RunRecord, g StatGate) func(report.Record) *stats.Band {
	g = g.fill()
	var samples map[string][]float64
	memo := make(map[string]*stats.Band)
	return func(r report.Record) *stats.Band {
		if samples == nil {
			samples = Samples(runs)
		}
		id := cellID(r)
		if b, ok := memo[id]; ok {
			return b
		}
		var b *stats.Band
		if xs := g.Pool(samples[id]); len(xs) >= g.MinHistory {
			b = g.Band(id, xs)
		}
		memo[id] = b
		return b
	}
}

// Annotate stamps each record's Noise band from the lookup, leaving
// records without history untouched. A nil lookup is a no-op, so
// callers can pass a store-less pipeline straight through.
func Annotate(recs []report.Record, noise func(report.Record) *stats.Band) {
	if noise == nil {
		return
	}
	for i := range recs {
		recs[i].Noise = noise(recs[i])
	}
}
