//go:build !unix

package store

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"
)

// lockStale is how old a sidecar lock file must be before it is
// presumed abandoned by a crashed holder and broken. Appends hold the
// lock for one write; seconds of margin is already generous.
const lockStale = 30 * time.Second

var lockSeq atomic.Uint64

// lockExclusive emulates an exclusive advisory lock on platforms
// without flock: a sidecar <name>.lock file created with O_EXCL is the
// lock, polled until acquired, and the returned unlock removes it.
// Unlike flock a crash leaks the sidecar, so locks older than
// lockStale are broken. Each holder writes a unique token into its
// sidecar and unlock removes the file only while it still carries that
// token — a holder whose stale lock was broken must not delete the new
// holder's lock on its way out and readmit concurrent appenders.
func lockExclusive(f *os.File) (unlock func() error, err error) {
	path := f.Name() + ".lock"
	token := fmt.Sprintf("%d.%d", os.Getpid(), lockSeq.Add(1))
	for {
		l, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_, werr := l.WriteString(token)
			cerr := l.Close()
			if werr != nil || cerr != nil {
				os.Remove(path)
				if werr != nil {
					return nil, werr
				}
				return nil, cerr
			}
			return func() error {
				// Remove the sidecar only while it verifiably still
				// carries our token: if it is unreadable (already
				// broken and removed) or carries another holder's
				// token, it is not ours to delete — and a lock that is
				// already gone is not an unlock failure.
				data, rerr := os.ReadFile(path)
				if rerr != nil || string(data) != token {
					return nil
				}
				return os.Remove(path)
			}, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
		//simlint:allow determinism -- lock staleness is a liveness judgment about the real world; it needs the real clock
		if info, serr := os.Stat(path); serr == nil && time.Since(info.ModTime()) > lockStale {
			// Break by renaming, not removing: rename is atomic, so of
			// several waiters that all saw the lock stale exactly one
			// claims it — a blind remove could land *after* another
			// breaker already recreated the lock and delete the new
			// holder's lock, readmitting concurrent appenders.
			claim := fmt.Sprintf("%s.stale.%s", path, token)
			if os.Rename(path, claim) == nil {
				os.Remove(claim)
			}
			continue
		}
		time.Sleep(5 * time.Millisecond)
	}
}
