// Package store is a content-addressed, persistent result store for
// experiment matrices. A cell's key is a SHA-256 fingerprint over a
// canonical encoding of everything that determines its outcome —
// benchmark, iteration count, repeats, guest architecture, the
// engine's full configuration, host, and a schema version — so a
// stored measurement is reused exactly when re-running it would
// measure the same thing, and editing any input invalidates exactly
// the affected cells.
//
// The store is layered: an in-process map shares cells between the
// figures of one invocation (Figs. 2, 6 and 8 overlap heavily), and
// an optional on-disk layer makes repeated CLI invocations
// incremental across processes. Disk blobs are JSON, written via
// temp-file-plus-rename, so concurrent workers and concurrent
// processes on one cache directory are safe.
//
// On top of the cell store sit run history (every completed matrix
// appends a timestamped JSONL record) and named baselines, which the
// simbase tool diffs against for regression detection.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/sched"
)

// blob is the persisted form of one measured cell: the full result,
// not just the headline number, so a cache hit reconstructs a Result
// indistinguishable from a fresh measurement (same statistics, same
// JSON record, same validation-relevant counters). Durations are
// stored in nanoseconds so the round trip is exact.
type blob struct {
	Schema int `json:"schema"`

	Benchmark string `json:"benchmark"`
	Engine    string `json:"engine"` // engine instance name (e.g. "dbt")
	Arch      string `json:"arch"`
	Iters     int64  `json:"iters"`

	KernelNS int64 `json:"kernel_ns"`
	TotalNS  int64 `json:"total_ns"`

	Stats engine.Stats `json:"stats"`
	Exc   []uint64     `json:"exc,omitempty"`

	SafeDevAccesses   uint64   `json:"safe_dev_accesses,omitempty"`
	CoprocDevAccesses uint64   `json:"coproc_dev_accesses,omitempty"`
	SWIRaised         uint64   `json:"swi_raised,omitempty"`
	GuestResults      []uint32 `json:"guest_results,omitempty"`
	Console           string   `json:"console,omitempty"`
}

func newBlob(r sched.Result) *blob {
	run := r.Run
	b := &blob{
		Schema:            SchemaVersion,
		Benchmark:         run.Benchmark.Name,
		Engine:            run.Engine,
		Arch:              run.Arch,
		Iters:             run.Iters,
		KernelNS:          int64(r.Kernel),
		TotalNS:           int64(run.Total),
		Stats:             run.Stats,
		Exc:               append([]uint64(nil), run.Exc[:]...),
		SafeDevAccesses:   run.SafeDevAccesses,
		CoprocDevAccesses: run.CoprocDevAccesses,
		SWIRaised:         run.SWIRaised,
		GuestResults:      append([]uint32(nil), run.GuestResults...),
		Console:           run.Console,
	}
	return b
}

// result reconstructs a scheduler result for j from the stored
// measurement.
func (b *blob) result(j sched.Job) sched.Result {
	run := &core.Result{
		Benchmark:         j.Bench,
		Engine:            b.Engine,
		Arch:              b.Arch,
		Iters:             b.Iters,
		Kernel:            time.Duration(b.KernelNS),
		Total:             time.Duration(b.TotalNS),
		Stats:             b.Stats,
		SafeDevAccesses:   b.SafeDevAccesses,
		CoprocDevAccesses: b.CoprocDevAccesses,
		SWIRaised:         b.SWIRaised,
		GuestResults:      append([]uint32(nil), b.GuestResults...),
		Console:           b.Console,
	}
	copy(run.Exc[:], b.Exc)
	return sched.Result{
		Job:    j,
		Kernel: time.Duration(b.KernelNS),
		Run:    run,
		Cached: true,
	}
}

// Store is the content-addressed result store. It implements
// sched.Store, so it plugs straight into a Scheduler. The zero value
// is not usable; call Open.
type Store struct {
	dir string // "" = in-process layer only

	mu  sync.RWMutex
	mem map[Key]*blob

	hits, misses atomic.Uint64

	errMu   sync.Mutex
	diskErr error // first disk failure, surfaced via Err
}

// Open opens (creating if needed) a store rooted at dir. An empty dir
// yields an in-process store with no persistence — still useful for
// sharing cells between the figures of one run.
func Open(dir string) (*Store, error) {
	s := &Store{mem: make(map[Key]*blob)}
	if dir != "" {
		if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		s.dir = dir
	}
	return s, nil
}

// Dir returns the on-disk root, "" for an in-process-only store.
func (s *Store) Dir() string { return s.dir }

// Get implements sched.Store: it returns the cached result for j and
// counts the lookup as a hit or miss.
func (s *Store) Get(j sched.Job) (sched.Result, bool) {
	b := s.lookup(KeyFor(j))
	if b == nil {
		s.misses.Add(1)
		return sched.Result{}, false
	}
	s.hits.Add(1)
	return b.result(j), true
}

// Has implements sched.Store: presence without touching the hit/miss
// counters.
func (s *Store) Has(j sched.Job) bool { return s.lookup(KeyFor(j)) != nil }

// Put implements sched.Store: it records a successfully measured
// result in both layers. Disk failures do not interrupt the run; the
// first one is retained and reported by Err.
func (s *Store) Put(r sched.Result) {
	if r.Err != nil || r.Run == nil {
		return
	}
	k := KeyFor(r.Job)
	b := newBlob(r)
	s.mu.Lock()
	s.mem[k] = b
	s.mu.Unlock()
	if s.dir == "" {
		return
	}
	if err := s.writeBlob(k, b); err != nil {
		s.errMu.Lock()
		if s.diskErr == nil {
			s.diskErr = err
		}
		s.errMu.Unlock()
	}
}

// Stats returns the lookup counters: cells served from the store and
// cells that had to run.
func (s *Store) Stats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// Err returns the first disk write failure, if any. Cache writes never
// fail a run; callers check Err at the end to warn that persistence
// was incomplete.
func (s *Store) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.diskErr
}

// FprintStats writes a one-line hit/miss summary in the voice of a CLI
// tool ("tool: cache: 12 hits, 0 misses (100% hits)"), plus a warning
// line if persistence failed. A nil store, or one that saw no lookups,
// prints nothing — so tools can call it unconditionally.
func FprintStats(w io.Writer, tool string, s *Store) {
	if s == nil {
		return
	}
	hits, misses := s.Stats()
	if hits+misses > 0 {
		fmt.Fprintf(w, "%s: cache: %d hits, %d misses (%.0f%% hits)\n",
			tool, hits, misses, float64(hits)/float64(hits+misses)*100)
	}
	if err := s.Err(); err != nil {
		fmt.Fprintf(w, "%s: cache writes incomplete: %v\n", tool, err)
	}
}

// lookup consults the in-process layer first, then disk, promoting
// disk hits into memory.
func (s *Store) lookup(k Key) *blob {
	s.mu.RLock()
	b := s.mem[k]
	s.mu.RUnlock()
	if b != nil || s.dir == "" {
		return b
	}
	data, err := os.ReadFile(s.blobPath(k))
	if err != nil {
		return nil
	}
	b = new(blob)
	if err := json.Unmarshal(data, b); err != nil || b.Schema != SchemaVersion {
		// Corrupt or foreign-schema blob: treat as a miss; a fresh
		// measurement will overwrite it.
		return nil
	}
	s.mu.Lock()
	s.mem[k] = b
	s.mu.Unlock()
	return b
}

func (s *Store) blobPath(k Key) string {
	hex := k.String()
	return filepath.Join(s.dir, "objects", hex[:2], hex+".json")
}

// writeBlob persists one cell via temp-file-plus-rename, so concurrent
// writers (goroutines or whole processes) on one directory never
// expose a torn blob; the last complete write wins, and identical keys
// hold identical measurements semantically, so "wins" is immaterial.
func (s *Store) writeBlob(k Key, b *blob) error {
	data, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", k, err)
	}
	if err := atomicWrite(s.blobPath(k), data); err != nil {
		return fmt.Errorf("store: write %s: %w", k, err)
	}
	return nil
}

// atomicWrite creates path's directory and writes data via
// temp-file-plus-rename, so readers never observe a torn file and
// concurrent writers cannot interleave.
func atomicWrite(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(f.Name())
		return errors.Join(werr, cerr)
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}
