// Package store is a content-addressed, persistent result store for
// experiment matrices. A cell's key is a SHA-256 fingerprint over a
// canonical encoding of everything that determines its outcome —
// benchmark, iteration count, repeats, guest architecture, the
// engine's full configuration, host, and a schema version — so a
// stored measurement is reused exactly when re-running it would
// measure the same thing, and editing any input invalidates exactly
// the affected cells.
//
// The store is an explicit tier chain. An in-process map shares cells
// between the figures of one invocation (Figs. 2, 6 and 8 overlap
// heavily); behind it sit an optional on-disk tier (-cache-dir, which
// makes repeated CLI invocations incremental across processes) and an
// optional remote tier (-remote, a simstored server that lets a whole
// CI fleet share one store). Lookups read through the chain in order,
// promoting hits into every faster tier; fresh measurements write back
// to every tier, with remote uploads asynchronous so a slow or dead
// server never blocks a measurement. Tier failures degrade the store
// to its remaining tiers and surface through Err — they never fail a
// run.
//
// On top of the cell store sit run history (every completed matrix
// appends a timestamped JSONL record) and named baselines, which the
// simbase tool diffs against for regression detection. With a remote
// tier attached, history and baselines live on the server, so simbase
// gates a fleet, not a machine.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/sched"
)

// Store layout file names, shared with the simstored server (whose
// -dir is exactly this layout, so a server can be pointed at an
// existing cache directory and serve its blobs).
const (
	objectsDirName   = "objects"
	baselinesDirName = "baselines"
	historyFileName  = "history.jsonl"
)

// blob is the persisted form of one measured cell: the full result,
// not just the headline number, so a cache hit reconstructs a Result
// indistinguishable from a fresh measurement (same statistics, same
// JSON record, same validation-relevant counters). Durations are
// stored in nanoseconds so the round trip is exact.
type blob struct {
	Schema int `json:"schema"`

	Benchmark string `json:"benchmark"`
	Engine    string `json:"engine"` // engine instance name (e.g. "dbt")
	Arch      string `json:"arch"`
	Iters     int64  `json:"iters"`

	KernelNS int64 `json:"kernel_ns"`
	TotalNS  int64 `json:"total_ns"`

	Stats engine.Stats `json:"stats"`
	Exc   []uint64     `json:"exc,omitempty"`

	SafeDevAccesses   uint64   `json:"safe_dev_accesses,omitempty"`
	CoprocDevAccesses uint64   `json:"coproc_dev_accesses,omitempty"`
	SWIRaised         uint64   `json:"swi_raised,omitempty"`
	GuestResults      []uint32 `json:"guest_results,omitempty"`
	Console           string   `json:"console,omitempty"`
}

func newBlob(r sched.Result) *blob {
	run := r.Run
	b := &blob{
		Schema:            SchemaVersion,
		Benchmark:         run.Benchmark.Name,
		Engine:            run.Engine,
		Arch:              run.Arch,
		Iters:             run.Iters,
		KernelNS:          int64(r.Kernel),
		TotalNS:           int64(run.Total),
		Stats:             run.Stats,
		Exc:               append([]uint64(nil), run.Exc[:]...),
		SafeDevAccesses:   run.SafeDevAccesses,
		CoprocDevAccesses: run.CoprocDevAccesses,
		SWIRaised:         run.SWIRaised,
		GuestResults:      append([]uint32(nil), run.GuestResults...),
		Console:           run.Console,
	}
	return b
}

// result reconstructs a scheduler result for j from the stored
// measurement.
func (b *blob) result(j sched.Job) sched.Result {
	run := &core.Result{
		Benchmark: j.Bench,
		Engine:    b.Engine,
		Arch:      b.Arch,
		Iters:     b.Iters,
		// The core count is key material (Fingerprint), so the job that
		// hit this blob booted exactly this many cores; no blob field
		// needed — pre-SMP blobs replay unchanged.
		Cores:             j.EffectiveCores(),
		Kernel:            time.Duration(b.KernelNS),
		Total:             time.Duration(b.TotalNS),
		Stats:             b.Stats,
		SafeDevAccesses:   b.SafeDevAccesses,
		CoprocDevAccesses: b.CoprocDevAccesses,
		SWIRaised:         b.SWIRaised,
		GuestResults:      append([]uint32(nil), b.GuestResults...),
		Console:           b.Console,
	}
	copy(run.Exc[:], b.Exc)
	return sched.Result{
		Job:    j,
		Kernel: time.Duration(b.KernelNS),
		Run:    run,
		Cached: true,
	}
}

// memEntry is one in-process cache slot: the blob plus the tier that
// originally supplied it, so hit provenance survives promotion.
type memEntry struct {
	b      *blob
	origin Provenance
}

// flight is one in-progress slow-path lookup; concurrent lookups of
// the same key wait for it instead of each reading the same disk blob
// (or issuing the same remote GET).
type flight struct {
	done   chan struct{}
	b      *blob
	origin Provenance
}

// TierStats breaks the store's hit counter down by where each hit's
// measurement originally came from. Dropped counts remote uploads shed
// because the write-back queue was full — results the local tiers kept
// but the fleet never saw.
type TierStats struct {
	Mem, Disk, Remote, Misses uint64
	Dropped                   uint64
}

// Hits is the total across all tiers.
func (t TierStats) Hits() uint64 { return t.Mem + t.Disk + t.Remote }

// Store is the content-addressed result store. It implements
// sched.Store, so it plugs straight into a Scheduler. The zero value
// is not usable; call Open.
type Store struct {
	tracerRef

	dir    string // "" = no disk tier
	chain  []tier // consulted in order behind mem: disk, then remote
	remote *RemoteTier

	mu  sync.RWMutex
	mem map[Key]memEntry

	memHits, diskHits, remoteHits, misses atomic.Uint64

	flightMu sync.Mutex
	flight   map[Key]*flight
}

// Open opens (creating if needed) a store rooted at dir. An empty dir
// yields an in-process store with no persistence — still useful for
// sharing cells between the figures of one run, and as the local side
// of a remote-only configuration (see AttachRemote).
func Open(dir string) (*Store, error) {
	s := &Store{
		mem:    make(map[Key]memEntry),
		flight: make(map[Key]*flight),
	}
	if dir != "" {
		d, err := newDiskTier(dir)
		if err != nil {
			return nil, err
		}
		s.dir = dir
		s.chain = append(s.chain, d)
	}
	return s, nil
}

// AttachRemote appends a remote tier to the lookup chain: cells miss
// through mem and disk to the server, remote hits are promoted into
// both local tiers, and fresh measurements upload asynchronously.
// Attach before handing the store to a Scheduler; the chain is not
// mutable under concurrent lookups.
func (s *Store) AttachRemote(rt *RemoteTier) {
	s.remote = rt
	s.chain = append(s.chain, rt)
}

// OpenTiered builds the store a CLI asked for: a disk tier when dir is
// set, a remote tier when remoteURL is set, either alone or layered —
// the one wiring path behind every tool's -cache-dir/-remote flags.
// opts configure the remote tier (bearer token, retry policy) and are
// ignored without a remote URL.
func OpenTiered(dir, remoteURL string, opts ...RemoteOption) (*Store, error) {
	s, err := Open(dir)
	if err != nil {
		return nil, err
	}
	if remoteURL != "" {
		rt, err := NewRemoteTier(remoteURL, opts...)
		if err != nil {
			return nil, err
		}
		s.AttachRemote(rt)
	}
	return s, nil
}

// Remote returns the attached remote tier, nil if none.
func (s *Store) Remote() *RemoteTier { return s.remote }

// Dir returns the on-disk root, "" for a store without a disk tier.
func (s *Store) Dir() string { return s.dir }

// Key implements sched.Store: the job's content address in hex form.
// The scheduler calls this once per job and threads the result through
// Get, Put and Has, so the fingerprint — which builds a throwaway
// engine instance to canonicalize its configuration — is computed
// exactly once per cell.
func (s *Store) Key(j sched.Job) string { return KeyFor(j).String() }

// keyOf recovers the binary key from the hex token issued by Key,
// recomputing it only for tokens the store did not issue (direct API
// callers passing something else).
func keyOf(j sched.Job, key string) Key {
	if k, ok := ParseKey(key); ok {
		return k
	}
	return KeyFor(j)
}

// Get implements sched.Store: it returns the cached result for j and
// counts the lookup as a hit (attributed to the tier the measurement
// originally came from) or a miss.
func (s *Store) Get(j sched.Job, key string) (sched.Result, bool) {
	b, origin := s.lookup(keyOf(j, key))
	if b == nil {
		s.misses.Add(1)
		noteLookup("", false)
		return sched.Result{}, false
	}
	switch origin {
	case ProvDisk:
		s.diskHits.Add(1)
	case ProvRemote:
		s.remoteHits.Add(1)
	default:
		origin = ProvMem
		s.memHits.Add(1)
	}
	noteLookup(origin, true)
	r := b.result(j)
	r.Key = key
	return r, true
}

// Has implements sched.Store: presence without touching the hit/miss
// counters.
func (s *Store) Has(key string) bool {
	k, ok := ParseKey(key)
	if !ok {
		return false
	}
	b, _ := s.lookup(k)
	return b != nil
}

// Put implements sched.Store: it records a successfully measured
// result in every tier — mem and disk synchronously, remote as an
// asynchronous upload. The blob is marshaled once here and the bytes
// shared by every persistent tier (blobs can be megabytes of console
// output and per-repeat stats; one encode per tier would double the
// worker's critical-path cost). Tier failures do not interrupt the
// run; the first one per tier is retained and reported by Err.
func (s *Store) Put(key string, r sched.Result) {
	if r.Err != nil || r.Run == nil {
		return
	}
	k := keyOf(r.Job, key)
	b := newBlob(r)
	s.memPut(k, b, ProvMem)
	if len(s.chain) == 0 {
		return
	}
	data, err := json.Marshal(b)
	if err != nil {
		// Nothing a tier could do better; let each record the failure.
		data = nil
	}
	for _, t := range s.chain {
		t.store(k, b, data)
	}
}

func (s *Store) memGet(k Key) (memEntry, bool) {
	s.mu.RLock()
	e, ok := s.mem[k]
	s.mu.RUnlock()
	return e, ok
}

func (s *Store) memPut(k Key, b *blob, origin Provenance) {
	s.mu.Lock()
	s.mem[k] = memEntry{b: b, origin: origin}
	s.mu.Unlock()
}

// lookup reads through the tier chain: the in-process map first, then
// each configured tier in order, promoting a hit into every faster
// tier. The slow path is single-flighted per key, so a worker pool
// racing on one cold cell performs one disk read (and at most one
// remote GET) instead of one per worker.
func (s *Store) lookup(k Key) (*blob, Provenance) {
	if e, ok := s.memGet(k); ok {
		return e.b, e.origin
	}
	if len(s.chain) == 0 {
		return nil, ""
	}

	s.flightMu.Lock()
	if f, ok := s.flight[k]; ok {
		s.flightMu.Unlock()
		noteCoalesced()
		<-f.done
		return f.b, f.origin
	}
	f := &flight{done: make(chan struct{})}
	s.flight[k] = f
	s.flightMu.Unlock()

	f.b, f.origin = s.probeChain(k)
	close(f.done)

	s.flightMu.Lock()
	delete(s.flight, k)
	s.flightMu.Unlock()
	return f.b, f.origin
}

// probeChain walks the persistent tiers for k and promotes a hit into
// the in-process map and every tier faster than the one that answered
// (a remote hit lands on disk, so the next process never goes back to
// the network for it). Promotion reuses the serialized bytes the
// answering tier read off disk or the wire — no re-marshal.
func (s *Store) probeChain(k Key) (*blob, Provenance) {
	for i, t := range s.chain {
		b, data, err := t.load(k)
		if err != nil || b == nil {
			// load errors are recorded by the tier itself (fault) and
			// degrade to the next tier.
			continue
		}
		origin := t.name()
		s.memPut(k, b, origin)
		notePromotion(ProvMem)
		for _, faster := range s.chain[:i] {
			faster.store(k, b, data)
			notePromotion(faster.name())
		}
		return b, origin
	}
	return nil, ""
}

// Stats returns the lookup counters: cells served from the store and
// cells that had to run.
func (s *Store) Stats() (hits, misses uint64) {
	t := s.TierStats()
	return t.Hits(), t.Misses
}

// TierStats returns the lookup counters broken down by hit provenance,
// plus the remote write-back drop count.
func (s *Store) TierStats() TierStats {
	t := TierStats{
		Mem:    s.memHits.Load(),
		Disk:   s.diskHits.Load(),
		Remote: s.remoteHits.Load(),
		Misses: s.misses.Load(),
	}
	if s.remote != nil {
		t.Dropped = s.remote.Dropped()
	}
	return t
}

// Err returns the first failure of each degraded tier, joined. Tier
// failures never fail a run; callers check Err at the end to warn that
// the store ran degraded (incomplete persistence, unreachable remote).
func (s *Store) Err() error {
	var errs []error
	for _, t := range s.chain {
		if err := t.fault(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Close flushes pending asynchronous work — the remote tier's upload
// queue — and returns Err. Call it after a run, before reporting cache
// statistics: a fleet's next host can only share this run's cells once
// their uploads have landed.
func (s *Store) Close() error {
	if s.remote != nil {
		s.remote.Close()
	}
	return s.Err()
}

// FprintStats writes a one-line hit/miss summary in the voice of a CLI
// tool ("tool: cache: 12 hits (12 remote), 0 misses (100% hits)") with
// hits attributed to the tier that supplied them, plus a warning line
// when write-back drops lost uploads and one per degraded tier. A nil
// store, or one that saw no lookups and dropped nothing, prints
// nothing — so tools can call it unconditionally.
func FprintStats(w io.Writer, tool string, s *Store) {
	if s == nil {
		return
	}
	t := s.TierStats()
	if total := t.Hits() + t.Misses; total > 0 {
		breakdown := ""
		var parts []string
		for _, p := range []struct {
			name string
			n    uint64
		}{{"mem", t.Mem}, {"disk", t.Disk}, {"remote", t.Remote}} {
			if p.n > 0 {
				parts = append(parts, fmt.Sprintf("%s %d", p.name, p.n))
			}
		}
		if len(parts) > 0 {
			breakdown = " (" + strings.Join(parts, ", ") + ")"
		}
		fmt.Fprintf(w, "%s: cache: %d hits%s, %d misses (%.0f%% hits)\n",
			tool, t.Hits(), breakdown, t.Misses, float64(t.Hits())/float64(total)*100)
	}
	if t.Dropped > 0 {
		fmt.Fprintf(w, "%s: cache: %d uploads dropped (write-back queue full); those results were not shared with the fleet\n",
			tool, t.Dropped)
	}
	if err := s.Err(); err != nil {
		fmt.Fprintf(w, "%s: cache degraded: %v\n", tool, err)
	}
}

// AtomicWrite creates path's directory and writes data via
// temp-file-plus-rename, so readers never observe a torn file and
// concurrent writers cannot interleave. Shared with the simstored
// server, whose on-disk layout is the same as the store's.
func AtomicWrite(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		os.Remove(f.Name())
		return errors.Join(werr, cerr)
	}
	if err := os.Rename(f.Name(), path); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}
