package store

import (
	"runtime/debug"
	"strings"
	"testing"

	"simbench/internal/engine"
	"simbench/internal/machine"
	"simbench/internal/sched"
)

// TestParseKeyRejections: every malformed key form the store or the
// simstored protocol could be handed is rejected, and the round trip
// through String survives.
func TestParseKeyRejections(t *testing.T) {
	valid := strings.Repeat("0123456789abcdef", 4)[:64]
	if _, ok := ParseKey(valid); !ok {
		t.Fatalf("ParseKey rejected a valid key %q", valid)
	}
	cases := map[string]string{
		"odd-length hex": valid[:63],
		"too short":      valid[:62],
		"too long":       valid + "ab",
		"non-hex":        strings.Replace(valid, valid[:1], "z", 1),
		"empty":          "",
	}
	for name, s := range cases {
		if _, ok := ParseKey(s); ok {
			t.Errorf("%s: ParseKey(%q) accepted", name, s)
		}
	}
	k, ok := ParseKey(valid)
	if !ok || k.String() != valid {
		t.Fatalf("round trip: got %q want %q", k.String(), valid)
	}
}

// TestBuildIdentity: each build-identity branch — no build info, no
// VCS stamp, dirty tree, clean stamp — yields the right cache identity
// and warning note.
func TestBuildIdentity(t *testing.T) {
	stamped := func(rev, modified string) *debug.BuildInfo {
		return &debug.BuildInfo{Settings: []debug.BuildSetting{
			{Key: "vcs.revision", Value: rev},
			{Key: "vcs.modified", Value: modified},
		}}
	}
	cases := []struct {
		name     string
		bi       *debug.BuildInfo
		ok       bool
		id       string
		noteHint string // "" means the note must be empty
	}{
		{"no build info", nil, false, "unknown", "no build info"},
		{"no vcs stamp", &debug.BuildInfo{Main: debug.Module{Version: "v1.2.3"}}, true, "module v1.2.3", "no VCS stamp"},
		{"dirty tree", stamped("abc123", "true"), true, "abc123 dirty=true", "dirty working tree"},
		{"clean stamp", stamped("abc123", "false"), true, "abc123 dirty=false", ""},
	}
	for _, tc := range cases {
		id, note := buildIdentity(tc.bi, tc.ok)
		if id != tc.id {
			t.Errorf("%s: buildID = %q, want %q", tc.name, id, tc.id)
		}
		if tc.noteHint == "" && note != "" {
			t.Errorf("%s: unexpected note %q", tc.name, note)
		}
		if tc.noteHint != "" && !strings.Contains(note, tc.noteHint) {
			t.Errorf("%s: note %q does not mention %q", tc.name, note, tc.noteHint)
		}
	}
}

// TestIdentityNote: silent for clean builds, a prefixed one-liner
// otherwise.
func TestIdentityNote(t *testing.T) {
	old := buildIDNote
	defer func() { buildIDNote = old }()

	buildIDNote = ""
	if got := IdentityNote("simbase"); got != "" {
		t.Errorf("clean build: IdentityNote = %q, want empty", got)
	}
	buildIDNote = "this build is special"
	if got, want := IdentityNote("simbase"), "simbase: note: this build is special"; got != want {
		t.Errorf("IdentityNote = %q, want %q", got, want)
	}
}

// sneakyEngine models the exact bug the keymaterial analyzer and the
// runtime backstop both guard against: an engine with a Config struct
// that engineFingerprint has no case for.
type sneakyEngine struct{}

type sneakyConfig struct{ Depth int }

func (sneakyEngine) Name() string              { return "sneaky" }
func (sneakyEngine) Features() engine.Features { return engine.Features{} }
func (sneakyEngine) Run([]*machine.Machine, uint64) (engine.Stats, error) {
	return engine.Stats{}, nil
}
func (sneakyEngine) Config() sneakyConfig { return sneakyConfig{} }

// plainEngine has no tunables; the generic name+features branch is the
// correct fingerprint for it.
type plainEngine struct{ sneakyEngine }

func (plainEngine) Name() string { return "plain" }
func (plainEngine) Config()      {} // niladic void: not a tunables reporter

func TestEngineFingerprintBackstop(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("engineFingerprint did not panic for an uncovered tunable engine")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, "no case for") {
			t.Fatalf("panic message %q does not explain the missing case", msg)
		}
	}()
	engineFingerprint(sched.Engine{Name: "sneaky", New: func() engine.Engine { return sneakyEngine{} }})
}

func TestEngineFingerprintPlainEngine(t *testing.T) {
	fp := engineFingerprint(sched.Engine{Name: "plain", New: func() engine.Engine { return plainEngine{} }})
	if !strings.HasPrefix(fp, "plain ") {
		t.Fatalf("fingerprint %q does not use the generic branch", fp)
	}
}
