package store

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"simbench/internal/report"
	"simbench/internal/sched"
)

// fabricateRun builds a synthetic n-cell run; cell i reuses the
// synthetic jobs of the concurrency test.
func fabricateRun(n int, kernel func(i int) time.Duration) []sched.Result {
	out := make([]sched.Result, n)
	for i := range out {
		out[i] = fabricate(syntheticJob(i), kernel(i))
	}
	return out
}

func TestHistoryAppendAndLoad(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if runs, err := s.History(); err != nil || len(runs) != 0 {
		t.Fatalf("fresh store history = %v, %v", runs, err)
	}

	if err := s.AppendHistory("fig7", fabricateRun(3, func(i int) time.Duration { return time.Duration(i+1) * time.Millisecond })); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendHistory("simbench", fabricateRun(2, func(i int) time.Duration { return time.Second })); err != nil {
		t.Fatal(err)
	}

	runs, err := s.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Label != "fig7" || runs[1].Label != "simbench" {
		t.Fatalf("history = %+v", runs)
	}
	if len(runs[0].Cells) != 3 || runs[0].Cells[0].Benchmark != "synthetic.0" {
		t.Errorf("first run cells = %+v", runs[0].Cells)
	}
	if runs[0].Time.IsZero() || runs[0].Schema != SchemaVersion {
		t.Errorf("run metadata = %+v", runs[0])
	}

	latest, err := s.LatestRun("")
	if err != nil || latest.Label != "simbench" {
		t.Errorf("LatestRun() = %v, %v", latest.Label, err)
	}
	byLabel, err := s.LatestRun("fig7")
	if err != nil || byLabel.Label != "fig7" {
		t.Errorf("LatestRun(fig7) = %v, %v", byLabel.Label, err)
	}
	if _, err := s.LatestRun("nope"); err == nil {
		t.Error("LatestRun(nope) did not fail")
	}
}

// TestHistorySkipsAbortedRuns: a cancelled matrix must not become the
// "latest run" that simbase save would silently baseline.
func TestHistorySkipsAbortedRuns(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	aborted := fabricateRun(3, func(int) time.Duration { return time.Second })
	aborted[2] = sched.Result{Job: aborted[2].Job, Err: context.Canceled}
	if err := s.AppendHistory("aborted", aborted); err != nil {
		t.Fatal(err)
	}
	if runs, err := s.History(); err != nil || len(runs) != 0 {
		t.Errorf("aborted run recorded: %v, %v", runs, err)
	}

	// A run with a real (non-cancellation) cell failure is history:
	// the errored cell is part of what happened.
	failed := fabricateRun(2, func(int) time.Duration { return time.Second })
	failed[1] = sched.Result{Job: failed[1].Job, Err: errors.New("guest aborted")}
	if err := s.AppendHistory("failed", failed); err != nil {
		t.Fatal(err)
	}
	runs, err := s.History()
	if err != nil || len(runs) != 1 || runs[0].Label != "failed" {
		t.Fatalf("history = %+v, %v", runs, err)
	}
	if runs[0].Cells[1].Error == "" {
		t.Error("failed cell lost its error text")
	}
}

// TestHistoryTornLine: a process killed mid-append leaves a partial
// JSON line; that must not poison the rest of the history.
func TestHistoryTornLine(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendHistory("good", fabricateRun(1, func(int) time.Duration { return time.Second })); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(s.historyPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"time":"2026-01-01T00:00:00Z","label":"torn","cells":[{"bench`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	runs, err := s.History()
	if err != nil {
		t.Fatalf("torn line poisoned history: %v", err)
	}
	if len(runs) != 1 || runs[0].Label != "good" {
		t.Errorf("history = %+v", runs)
	}
	if _, err := s.LatestRun(""); err != nil {
		t.Errorf("LatestRun after torn line: %v", err)
	}

	// A history that is nothing but garbage does surface the problem.
	if err := os.WriteFile(s.historyPath(), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.History(); err == nil {
		t.Error("all-garbage history did not error")
	}
}

// TestHistoryConcurrentAppends: appends from many goroutines (each on
// its own file descriptor, standing in for separate processes) are
// serialized by the append lock — every line survives, none interleave.
// Before the lock, multi-megabyte O_APPEND writes could interleave and
// silently lose both runs to the malformed-line skip.
func TestHistoryConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	const writers = 8
	// Pad each run well past any atomic-write guarantee POSIX gives an
	// O_APPEND write, so unserialized appends would actually interleave.
	pad := strings.Repeat("x", 1<<20)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := Open(dir)
			if err != nil {
				t.Error(err)
				return
			}
			res := fabricateRun(1, func(int) time.Duration { return time.Duration(w+1) * time.Millisecond })
			res[0].Run.Console = pad
			if err := s.AppendHistory(fmt.Sprintf("writer-%d", w), res); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	runs, err := s.History()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != writers {
		t.Fatalf("history holds %d of %d concurrent runs", len(runs), writers)
	}
	seen := make(map[string]bool)
	for _, rr := range runs {
		seen[rr.Label] = true
		if len(rr.Cells) != 1 {
			t.Errorf("run %q corrupted: %d cells", rr.Label, len(rr.Cells))
		}
	}
	if len(seen) != writers {
		t.Errorf("labels lost: %v", seen)
	}
}

// TestLockedAppendNewlineHandling: lines land newline-terminated
// exactly once, whether or not the caller supplied one.
func TestLockedAppendNewlineHandling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "h.jsonl")
	if err := LockedAppend(path, []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := LockedAppend(path, []byte(`{"b":2}`+"\n")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "{\"a\":1}\n{\"b\":2}\n" {
		t.Errorf("appended file = %q", data)
	}
}

// TestHistoryOversizedLines: the old line scanner capped entries at
// 64 MiB and returned bufio.ErrTooLong for anything bigger — poisoning
// the *entire* history. Streaming decode has no cap: an oversized
// valid entry parses, and an oversized garbage line is skipped and
// counted like any other malformed entry.
func TestHistoryOversizedLines(t *testing.T) {
	const oldCap = 64 << 20
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// A valid run whose single line is bigger than the old cap.
	big := fabricateRun(1, func(int) time.Duration { return time.Second })
	big[0].Run.Console = strings.Repeat("c", oldCap+1<<20)
	if err := s.AppendHistory("big", big); err != nil {
		t.Fatal(err)
	}
	// An oversized garbage line in the middle.
	if err := LockedAppend(s.historyPath(), []byte(strings.Repeat("g", oldCap+1<<20))); err != nil {
		t.Fatal(err)
	}
	// A normal run after both.
	if err := s.AppendHistory("after", fabricateRun(1, func(int) time.Duration { return time.Second })); err != nil {
		t.Fatal(err)
	}

	runs, err := s.History()
	if err != nil {
		t.Fatalf("oversized line poisoned history: %v", err)
	}
	if len(runs) != 2 || runs[0].Label != "big" || runs[1].Label != "after" {
		labels := make([]string, len(runs))
		for i, rr := range runs {
			labels[i] = rr.Label
		}
		t.Fatalf("history labels = %v, want [big after]", labels)
	}
	if len(runs[0].Cells) == 0 {
		t.Error("oversized run lost its cells")
	}
	if latest, err := s.LatestRun(""); err != nil || latest.Label != "after" {
		t.Errorf("LatestRun = %q, %v", latest.Label, err)
	}
}

func TestHistoryNoopInMemory(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendHistory("x", fabricateRun(1, func(int) time.Duration { return time.Second })); err != nil {
		t.Fatal(err)
	}
	if runs, err := s.History(); err != nil || runs != nil {
		t.Errorf("in-memory history = %v, %v", runs, err)
	}
	if err := s.SaveBaseline("x", RunRecord{}); err == nil {
		t.Error("in-memory SaveBaseline did not fail")
	}
}

func TestBaselines(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rr := NewRun("fig7", fabricateRun(2, func(i int) time.Duration { return time.Duration(i+1) * time.Second }))
	if err := s.SaveBaseline("nightly", rr); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadBaseline("nightly")
	if err != nil {
		t.Fatal(err)
	}
	if got.Label != "fig7" || len(got.Cells) != 2 || got.Cells[1].KernelSeconds != 2 {
		t.Errorf("baseline round trip = %+v", got)
	}
	names, err := s.Baselines()
	if err != nil || len(names) != 1 || names[0] != "nightly" {
		t.Errorf("Baselines = %v, %v", names, err)
	}
	if _, err := s.LoadBaseline("absent"); err == nil {
		t.Error("LoadBaseline(absent) did not fail")
	}
	for _, bad := range []string{"", "a/b", "..", ".hidden"} {
		if err := s.SaveBaseline(bad, rr); err == nil {
			t.Errorf("SaveBaseline(%q) accepted", bad)
		}
	}
}

func TestDiffRuns(t *testing.T) {
	base := NewRun("base", fabricateRun(4, func(i int) time.Duration { return 100 * time.Millisecond }))
	cur := NewRun("cur", fabricateRun(4, func(i int) time.Duration {
		switch i {
		case 0:
			return 125 * time.Millisecond // +25 %: regression
		case 1:
			return 70 * time.Millisecond // -30 %: improvement
		case 2:
			return 105 * time.Millisecond // +5 %: noise
		default:
			return 100 * time.Millisecond
		}
	}))
	// An extra measured cell on the base side, an errored cell with no
	// measured twin on the current side, and a cell the baseline
	// measured (synthetic.3) erroring in the current run.
	base.Cells = append(base.Cells, report.Record{Benchmark: "only.base", Engine: "interp", Arch: "arm", Iters: 9, KernelSeconds: 1})
	cur.Cells = append(cur.Cells, report.Record{Benchmark: "never.seen", Engine: "interp", Arch: "arm", Iters: 9, Error: "boom"})
	cur.Cells[3].Error = "guest aborted"
	cur.Cells[3].KernelSeconds = 0

	d := DiffRuns(base, cur, 0.10)
	if !d.Regressed() {
		t.Fatal("no regression flagged")
	}
	if len(d.Regressions) != 1 || d.Regressions[0].Benchmark != "synthetic.0" {
		t.Errorf("regressions = %+v", d.Regressions)
	}
	if got := d.Regressions[0].Delta; got < 0.24 || got > 0.26 {
		t.Errorf("delta = %v, want ~0.25", got)
	}
	if len(d.Improvements) != 1 || d.Improvements[0].Benchmark != "synthetic.1" {
		t.Errorf("improvements = %+v", d.Improvements)
	}
	if d.Stable != 1 {
		t.Errorf("stable = %d, want 1", d.Stable)
	}
	if len(d.Broken) != 1 || !strings.Contains(d.Broken[0], "synthetic.3") {
		t.Errorf("broken = %v", d.Broken)
	}
	if len(d.OnlyBase) != 1 || len(d.OnlyCurrent) != 1 {
		t.Errorf("unmatched: base=%v current=%v", d.OnlyBase, d.OnlyCurrent)
	}

	// A working-to-broken cell fails the gate even with a huge
	// threshold.
	if !DiffRuns(base, cur, 100).Regressed() {
		t.Error("broken cell did not fail the gate at a high threshold")
	}

	// A cell errored in the baseline but present in the current run is
	// reported once (current side), not in both unmatched lists.
	base2 := NewRun("base", nil)
	base2.Cells = append(base2.Cells, report.Record{Benchmark: "flaky", Engine: "interp", Arch: "arm", Iters: 9, Error: "boom"})
	cur2 := NewRun("cur", nil)
	cur2.Cells = append(cur2.Cells, report.Record{Benchmark: "flaky", Engine: "interp", Arch: "arm", Iters: 9, KernelSeconds: 1})
	d2 := DiffRuns(base2, cur2, 0.10)
	if len(d2.OnlyBase) != 0 || len(d2.OnlyCurrent) != 1 {
		t.Errorf("flaky cell double-listed: base=%v current=%v", d2.OnlyBase, d2.OnlyCurrent)
	}
	if d2.Regressed() {
		t.Errorf("errored-baseline cell counted as regression: %+v", d2)
	}

	// Within threshold both ways: clean diff.
	clean := DiffRuns(base, base, 0.10)
	if clean.Regressed() || len(clean.Improvements) != 0 || len(clean.Broken) != 0 {
		t.Errorf("self-diff not clean: %+v", clean)
	}
}
