package store

import (
	"fmt"
	"sort"

	"simbench/internal/report"
)

// CellDiff is one cell compared between two runs.
type CellDiff struct {
	Benchmark string
	Engine    string
	Arch      string
	Iters     int64
	Repeats   int

	// BaseSeconds and CurrentSeconds are the kernel times of the two
	// runs; Delta is CurrentSeconds/BaseSeconds - 1, so positive means
	// the current run is slower.
	BaseSeconds    float64
	CurrentSeconds float64
	Delta          float64
}

// Cell names the cell the way the scheduler does, plus its scale.
func (c CellDiff) Cell() string {
	return fmt.Sprintf("%s/%s/%s@%d", c.Arch, c.Benchmark, c.Engine, c.Iters)
}

// Diff is the cell-by-cell comparison of two runs.
type Diff struct {
	// Threshold is the relative slowdown tolerated as noise.
	Threshold float64
	// Regressions are common cells slower than Threshold allows,
	// worst first; Improvements are common cells faster by more than
	// Threshold, best first.
	Regressions  []CellDiff
	Improvements []CellDiff
	// Stable counts common cells within the threshold either way.
	Stable int
	// Broken names cells measured in the baseline but errored (or
	// unmeasured) in the current run — going from working to broken
	// must fail a regression gate, so they count towards Regressed.
	Broken []string
	// OnlyBase and OnlyCurrent name cells without a measured
	// counterpart in the other run — absent from it, or (for
	// OnlyCurrent) errored in both runs; they are compared in neither
	// direction.
	OnlyBase    []string
	OnlyCurrent []string
}

// Regressed reports whether any cell regressed past the threshold or
// broke outright.
func (d Diff) Regressed() bool { return len(d.Regressions) > 0 || len(d.Broken) > 0 }

// cellID keys a record by everything that identifies a cell within a
// run: coordinates and scale. Engine here is the display name — diffs
// compare like-named columns across time, which is exactly what "did
// my simulator get slower" asks.
func cellID(r report.Record) string {
	return fmt.Sprintf("%s|%s|%s|%d|%d", r.Arch, r.Benchmark, r.Engine, r.Iters, r.Repeats)
}

func measured(r report.Record) bool { return r.Error == "" && r.KernelSeconds > 0 }

// DiffRuns compares two recorded runs cell by cell. Cells are matched
// by (arch, benchmark, engine, iters, repeats); a matched pair counts
// as regressed when the current kernel time exceeds the baseline by
// more than threshold (e.g. 0.10 = 10 % slower), and as improved when
// it undercuts it by more than threshold. A cell the baseline measured
// but the current run could not (errored or zero-time) is Broken —
// and fails the gate; errored cells with no measured twin are merely
// reported as unmatched.
func DiffRuns(base, current RunRecord, threshold float64) Diff {
	d := Diff{Threshold: threshold}
	baseByID := make(map[string]report.Record, len(base.Cells))
	var baseUnmeasured []string
	for _, r := range base.Cells {
		if measured(r) {
			baseByID[cellID(r)] = r
		} else {
			baseUnmeasured = append(baseUnmeasured, cellID(r))
		}
	}
	curIDs := make(map[string]bool, len(current.Cells))
	for _, r := range current.Cells {
		curIDs[cellID(r)] = true
	}
	matched := make(map[string]bool, len(current.Cells))
	for _, cur := range current.Cells {
		id := cellID(cur)
		b, ok := baseByID[id]
		if !measured(cur) {
			if ok {
				// The baseline measured this cell; the current run
				// could not.
				matched[id] = true
				d.Broken = append(d.Broken, id)
			} else {
				d.OnlyCurrent = append(d.OnlyCurrent, id)
			}
			continue
		}
		if !ok {
			d.OnlyCurrent = append(d.OnlyCurrent, id)
			continue
		}
		matched[id] = true
		cd := CellDiff{
			Benchmark:      cur.Benchmark,
			Engine:         cur.Engine,
			Arch:           cur.Arch,
			Iters:          cur.Iters,
			Repeats:        cur.Repeats,
			BaseSeconds:    b.KernelSeconds,
			CurrentSeconds: cur.KernelSeconds,
			Delta:          cur.KernelSeconds/b.KernelSeconds - 1,
		}
		switch {
		case cd.Delta > threshold:
			d.Regressions = append(d.Regressions, cd)
		case cd.Delta < -threshold:
			d.Improvements = append(d.Improvements, cd)
		default:
			d.Stable++
		}
	}
	for id := range baseByID {
		if !matched[id] {
			d.OnlyBase = append(d.OnlyBase, id)
		}
	}
	// An errored baseline cell is OnlyBase only when the current run
	// has no cell with that id at all; if it does, the current-run
	// side already reported it once (as a measurement or OnlyCurrent).
	for _, id := range baseUnmeasured {
		if !curIDs[id] {
			d.OnlyBase = append(d.OnlyBase, id)
		}
	}
	sort.Slice(d.Regressions, func(i, j int) bool { return d.Regressions[i].Delta > d.Regressions[j].Delta })
	sort.Slice(d.Improvements, func(i, j int) bool { return d.Improvements[i].Delta < d.Improvements[j].Delta })
	sort.Strings(d.Broken)
	sort.Strings(d.OnlyBase)
	sort.Strings(d.OnlyCurrent)
	return d
}
