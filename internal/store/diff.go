package store

import (
	"fmt"
	"sort"

	"simbench/internal/report"
	"simbench/internal/stats"
)

// CellDiff is one cell compared between two runs.
type CellDiff struct {
	Benchmark string
	Engine    string
	Arch      string
	Iters     int64
	Repeats   int

	// BaseSeconds and CurrentSeconds are the kernel times of the two
	// runs; Delta is CurrentSeconds/BaseSeconds - 1, so positive means
	// the current run is slower.
	BaseSeconds    float64
	CurrentSeconds float64
	Delta          float64

	// Noise is the cell's historical noise band when the statistical
	// gate judged it; nil under the fixed-threshold gate.
	Noise *stats.Band
	// Gate names the rule that judged the cell: "fixed", "stat",
	// "stat (floored)" for a degenerate band widened to the threshold
	// floor, "stat (drift)" for an in-band sample whose history median
	// has drifted beyond the threshold from the baseline, or
	// "fixed (history n=K)" when the cell's history was too short for
	// a statistical verdict.
	Gate string
}

// Cell names the cell the way the scheduler does, plus its scale.
func (c CellDiff) Cell() string {
	return fmt.Sprintf("%s/%s/%s@%d", c.Arch, c.Benchmark, c.Engine, c.Iters)
}

// Diff is the cell-by-cell comparison of two runs.
type Diff struct {
	// Mode names the gate that produced the diff: "fixed" (every cell
	// judged by Threshold) or "stat" (cells with enough history judged
	// by their noise band, the rest by Threshold).
	Mode string
	// Threshold is the relative slowdown tolerated as noise by the
	// fixed gate — and, in stat mode, by its fallback and floor.
	Threshold float64
	// Regressions are common cells slower than Threshold allows,
	// worst first; Improvements are common cells faster by more than
	// Threshold, best first.
	Regressions  []CellDiff
	Improvements []CellDiff
	// Stable counts common cells within the threshold either way.
	Stable int
	// Broken names cells measured in the baseline but errored (or
	// unmeasured) in the current run — going from working to broken
	// must fail a regression gate, so they count towards Regressed.
	Broken []string
	// OnlyBase and OnlyCurrent name cells without a measured
	// counterpart in the other run — absent from it, or (for
	// OnlyCurrent) errored in both runs; they are compared in neither
	// direction.
	OnlyBase    []string
	OnlyCurrent []string
}

// Regressed reports whether any cell regressed past the threshold or
// broke outright.
func (d Diff) Regressed() bool { return len(d.Regressions) > 0 || len(d.Broken) > 0 }

// cellID keys a record by everything that identifies a cell within a
// run: coordinates and scale. Engine here is the display name — diffs
// compare like-named columns across time, which is exactly what "did
// my simulator get slower" asks.
func cellID(r report.Record) string {
	return fmt.Sprintf("%s|%s|%s|%d|%d", r.Arch, r.Benchmark, r.Engine, r.Iters, r.Repeats)
}

func measured(r report.Record) bool { return r.Error == "" && r.KernelSeconds > 0 }

// judgment is one gate's ruling on a matched, measured cell pair.
type judgment struct {
	verdict stats.Verdict
	noise   *stats.Band
	gate    string
}

// fixedJudge is the classic gate: the relative delta against the
// baseline, compared to a fixed threshold.
func fixedJudge(threshold float64, base, cur report.Record) judgment {
	j := judgment{gate: "fixed"}
	switch delta := cur.KernelSeconds/base.KernelSeconds - 1; {
	case delta > threshold:
		j.verdict = stats.Regressed
	case delta < -threshold:
		j.verdict = stats.Improved
	}
	return j
}

// DiffRuns compares two recorded runs cell by cell. Cells are matched
// by (arch, benchmark, engine, iters, repeats); a matched pair counts
// as regressed when the current kernel time exceeds the baseline by
// more than threshold (e.g. 0.10 = 10 % slower), and as improved when
// it undercuts it by more than threshold. A cell the baseline measured
// but the current run could not (errored or zero-time) is Broken —
// and fails the gate; errored cells with no measured twin are merely
// reported as unmatched.
func DiffRuns(base, current RunRecord, threshold float64) Diff {
	d := diffRuns(base, current, func(b, cur report.Record) judgment {
		return fixedJudge(threshold, b, cur)
	})
	d.Mode = "fixed"
	d.Threshold = threshold
	return d
}

// DiffRunsStat compares two recorded runs under the variance-aware
// gate: a matched cell with at least MinHistory fresh samples in the
// history window is judged by its noise band — flagged when the
// current measurement falls outside what the cell's own history
// explains — while short-history cells fall back to the fixed
// threshold, and a degenerate band (identical history) is floored to
// median±Threshold. The baseline still anchors the verdict: because
// the band follows recent history, a cell whose band median has moved
// beyond Threshold from the baseline is in drift — its band is centred
// on the wrong level, so the sample is judged against the baseline and
// threshold directly (otherwise a +3 %-per-run creep would re-center
// the band each run and never fail CI, and a drifted band would grade
// a still-regressed sample "improved"). history should exclude the
// current run itself, or the measurement under test would vouch for
// its own normality.
//
// Matching, Broken, OnlyBase and OnlyCurrent semantics are identical
// to DiffRuns: statistics refine the verdict on comparable cells, not
// what is comparable.
func DiffRunsStat(base, current RunRecord, history []RunRecord, g StatGate) Diff {
	g = g.fill()
	samples := Samples(history)
	d := diffRuns(base, current, func(b, cur report.Record) judgment {
		id := cellID(cur)
		xs := g.Pool(samples[id])
		if len(xs) < g.MinHistory {
			j := fixedJudge(g.Threshold, b, cur)
			j.gate = fmt.Sprintf("fixed (history n=%d)", len(xs))
			return j
		}
		band := g.Band(id, xs)
		gate := "stat"
		if band.Degenerate() {
			// The floor: a history with zero spread would flag any
			// nonzero delta; the fixed threshold bounds how strict the
			// statistical gate may get.
			band.Lo = band.Median * (1 - g.Threshold)
			band.Hi = band.Median * (1 + g.Threshold)
			gate = "stat (floored)"
		}
		j := judgment{noise: band, gate: gate}
		// The band re-centers on recent history, so on its own it would
		// let a slow drift creep past the pinned baseline one in-band
		// step at a time — and, once drifted, would grade samples
		// relative to the drifted level (a 115 ms sample under a
		// 125 ms-median band reads "improved" even at +15 % over a
		// 100 ms baseline). The baseline stays the anchor: while the
		// cell's central tendency sits beyond the threshold from the
		// baseline, the band is centred on the wrong level, so the
		// sample is judged the classic way — against the baseline and
		// threshold directly. That flags continuing drift, and lets a
		// just-fixed cell go green immediately instead of failing until
		// the stale median ages out of the window. Only an anchored
		// band grades samples statistically.
		if drift := band.Median/b.KernelSeconds - 1; drift > g.Threshold || drift < -g.Threshold {
			j = fixedJudge(g.Threshold, b, cur)
			j.noise = band
			j.gate = "stat (drift)"
		} else {
			j.verdict = band.Verdict(cur.KernelSeconds)
		}
		return j
	})
	d.Mode = "stat"
	d.Threshold = g.Threshold
	return d
}

// diffRuns matches cells between two runs and applies judge to each
// matched, measured pair.
func diffRuns(base, current RunRecord, judge func(base, cur report.Record) judgment) Diff {
	var d Diff
	baseByID := make(map[string]report.Record, len(base.Cells))
	var baseUnmeasured []string
	for _, r := range base.Cells {
		if measured(r) {
			baseByID[cellID(r)] = r
		} else {
			baseUnmeasured = append(baseUnmeasured, cellID(r))
		}
	}
	curIDs := make(map[string]bool, len(current.Cells))
	for _, r := range current.Cells {
		curIDs[cellID(r)] = true
	}
	matched := make(map[string]bool, len(current.Cells))
	for _, cur := range current.Cells {
		id := cellID(cur)
		b, ok := baseByID[id]
		if !measured(cur) {
			if ok {
				// The baseline measured this cell; the current run
				// could not.
				matched[id] = true
				d.Broken = append(d.Broken, id)
			} else {
				d.OnlyCurrent = append(d.OnlyCurrent, id)
			}
			continue
		}
		if !ok {
			d.OnlyCurrent = append(d.OnlyCurrent, id)
			continue
		}
		matched[id] = true
		j := judge(b, cur)
		cd := CellDiff{
			Benchmark:      cur.Benchmark,
			Engine:         cur.Engine,
			Arch:           cur.Arch,
			Iters:          cur.Iters,
			Repeats:        cur.Repeats,
			BaseSeconds:    b.KernelSeconds,
			CurrentSeconds: cur.KernelSeconds,
			Delta:          cur.KernelSeconds/b.KernelSeconds - 1,
			Noise:          j.noise,
			Gate:           j.gate,
		}
		switch j.verdict {
		case stats.Regressed:
			d.Regressions = append(d.Regressions, cd)
		case stats.Improved:
			d.Improvements = append(d.Improvements, cd)
		default:
			d.Stable++
		}
	}
	for id := range baseByID {
		if !matched[id] {
			d.OnlyBase = append(d.OnlyBase, id)
		}
	}
	// An errored baseline cell is OnlyBase only when the current run
	// has no cell with that id at all; if it does, the current-run
	// side already reported it once (as a measurement or OnlyCurrent).
	for _, id := range baseUnmeasured {
		if !curIDs[id] {
			d.OnlyBase = append(d.OnlyBase, id)
		}
	}
	sort.Slice(d.Regressions, func(i, j int) bool { return d.Regressions[i].Delta > d.Regressions[j].Delta })
	sort.Slice(d.Improvements, func(i, j int) bool { return d.Improvements[i].Delta < d.Improvements[j].Delta })
	sort.Strings(d.Broken)
	sort.Strings(d.OnlyBase)
	sort.Strings(d.OnlyCurrent)
	return d
}
