package store

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"simbench/internal/report"
	"simbench/internal/stats"
)

// ms builds a fabricated duration from fractional milliseconds.
func ms(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }

// gateHistory fabricates the canonical three-cell gate scenario:
// cell 0 is noisy but stable (±15 % scatter), cell 1 is quiet (±1 %
// scatter), cell 2 has a degenerate all-identical history. Returns the
// six-run history; run 0 doubles as the baseline.
func gateHistory() []RunRecord {
	noisy := []float64{100, 115, 85, 112, 90, 108}
	quiet := []float64{100, 101, 99, 100.5, 99.5, 100}
	var runs []RunRecord
	for r := range noisy {
		r := r
		runs = append(runs, NewRun("simbench", fabricateRun(3, func(i int) time.Duration {
			switch i {
			case 0:
				return ms(noisy[r])
			case 1:
				return ms(quiet[r])
			default:
				return ms(100)
			}
		})))
	}
	return runs
}

// currentRun fabricates the run under test: cell 0 at +12 % of the
// baseline (inside its own noise), cell 1 at +5 % (outside its noise,
// inside the fixed threshold), cell 2 at the given value.
func currentRun(cell2 float64) RunRecord {
	return NewRun("simbench", fabricateRun(3, func(i int) time.Duration {
		switch i {
		case 0:
			return ms(112)
		case 1:
			return ms(105)
		default:
			return ms(cell2)
		}
	}))
}

func TestSamples(t *testing.T) {
	runs := gateHistory()
	// An errored cell contributes no sample.
	runs[5].Cells[0].Error = "guest aborted"
	runs[5].Cells[0].KernelSeconds = 0
	samples := Samples(runs)
	if len(samples) != 3 {
		t.Fatalf("cells = %d, want 3", len(samples))
	}
	for id, xs := range samples {
		want := 6
		if strings.Contains(id, "synthetic.0") {
			want = 5
		}
		if len(xs) != want {
			t.Errorf("%s: %d samples, want %d", id, len(xs), want)
		}
	}
}

// TestSamplesExcludeCachedReplays: re-running an unchanged binary
// against the cache appends replayed cells to history; those must not
// re-enter the sample pool, or the band would collapse around (and the
// drift check re-center on) whichever measurement happened to be
// cached.
func TestSamplesExcludeCachedReplays(t *testing.T) {
	runs := gateHistory()
	// Four replay runs of the last measurement, as a -cache-dir rerun
	// would record them.
	for i := 0; i < 4; i++ {
		replay := NewRun("simbench", fabricateRun(3, func(i int) time.Duration {
			if i == 0 {
				return ms(112)
			}
			return ms(100)
		}))
		for c := range replay.Cells {
			replay.Cells[c].Cached = true
		}
		runs = append(runs, replay)
	}
	samples := Samples(runs)
	for id, xs := range samples {
		if len(xs) != 6 {
			t.Errorf("%s: %d samples, want 6 (replays must not pool)", id, len(xs))
		}
	}
	// Consequently the gate still reads the real history: a current
	// run at the cells' historical norms stays clean — no drift false
	// alarm from the replayed 0.112s pile-up.
	cur := NewRun("simbench", fabricateRun(3, func(i int) time.Duration {
		if i == 0 {
			return ms(112)
		}
		return ms(100)
	}))
	d := DiffRunsStat(runs[0], cur, runs, StatGate{Threshold: 0.10, Seed: 1})
	if len(d.Regressions) != 0 || d.Stable != 3 {
		t.Errorf("replays skewed the gate: %+v", d)
	}
}

func TestNoiseLookupMinHistory(t *testing.T) {
	runs := gateHistory()
	look := NoiseLookup(runs, StatGate{})
	for _, c := range runs[0].Cells {
		b := look(c)
		if b == nil || b.N != 6 {
			t.Errorf("%s: band = %+v, want n=6", CellName(c), b)
		}
	}
	// With only four runs, no cell clears the default MinHistory of 5.
	short := NoiseLookup(runs[:4], StatGate{})
	for _, c := range runs[0].Cells {
		if b := short(c); b != nil {
			t.Errorf("short history produced a band: %+v", b)
		}
	}
	// The noisy cell's band is real; unknown cells answer nil (twice,
	// exercising the memo).
	if b := look(runs[0].Cells[0]); b == nil || b.Degenerate() {
		t.Errorf("lookup on noisy cell = %+v", b)
	}
	for i := 0; i < 2; i++ {
		if b := look(report.Record{Benchmark: "never.ran"}); b != nil {
			t.Errorf("lookup on unknown cell = %+v", b)
		}
	}
}

func TestAnnotate(t *testing.T) {
	runs := gateHistory()
	recs := append([]report.Record(nil), runs[0].Cells...)
	Annotate(recs, nil) // nil lookup is a no-op
	for _, r := range recs {
		if r.Noise != nil {
			t.Fatalf("nil lookup annotated: %+v", r)
		}
	}
	Annotate(recs, NoiseLookup(runs, StatGate{}))
	for _, r := range recs {
		if r.Noise == nil || r.Noise.N != 6 {
			t.Errorf("record not annotated: %+v", r)
		}
	}
}

// TestDiffRunsStatGate is the gate's reason to exist, in one test: the
// statistical gate passes a noisy-but-stable cell the fixed threshold
// false-alarms on, and flags a quiet cell's small regression the fixed
// threshold misses.
func TestDiffRunsStatGate(t *testing.T) {
	history := gateHistory()
	base, cur := history[0], currentRun(105)
	g := StatGate{Threshold: 0.10, Seed: 1}

	// The fixed gate gets both calls wrong: cell 0 (+12 %) flagged
	// though its history scatters ±15 %, cell 1 (+5 %) passed though
	// its history never strays past ±1 %.
	fixed := DiffRuns(base, cur, 0.10)
	if len(fixed.Regressions) != 1 || fixed.Regressions[0].Benchmark != "synthetic.0" {
		t.Fatalf("fixed gate regressions = %+v", fixed.Regressions)
	}

	d := DiffRunsStat(base, cur, history, g)
	if d.Mode != "stat" {
		t.Errorf("mode = %q", d.Mode)
	}
	if len(d.Regressions) != 1 || d.Regressions[0].Benchmark != "synthetic.1" {
		t.Fatalf("stat gate regressions = %+v", d.Regressions)
	}
	r := d.Regressions[0]
	if r.Gate != "stat" || r.Noise == nil {
		t.Errorf("regression judged by %q, noise %+v", r.Gate, r.Noise)
	}
	if r.Noise.Hi >= 0.105 || r.Noise.N != 6 {
		t.Errorf("quiet cell band = %+v, want Hi < 0.105", r.Noise)
	}
	// Cells 0 and 2 are stable: the noisy cell inside its band, the
	// degenerate cell inside the threshold floor.
	if d.Stable != 2 || len(d.Improvements) != 0 || d.Regressed() != true {
		t.Errorf("diff = %+v", d)
	}

	// Determinism: the same inputs give the identical diff, bands and
	// all.
	if d2 := DiffRunsStat(base, cur, history, g); !reflect.DeepEqual(d, d2) {
		t.Errorf("stat diff not deterministic:\n%+v\n%+v", d, d2)
	}
}

// TestDiffRunsStatFloor: a degenerate (all-identical) history must not
// flag every nonzero delta — the fixed threshold floors the band — but
// a delta past the floor still flags.
func TestDiffRunsStatFloor(t *testing.T) {
	history := gateHistory()
	g := StatGate{Threshold: 0.10, Seed: 1}

	d := DiffRunsStat(history[0], currentRun(115), history, g)
	var floored *CellDiff
	for i := range d.Regressions {
		if d.Regressions[i].Benchmark == "synthetic.2" {
			floored = &d.Regressions[i]
		}
	}
	if floored == nil {
		t.Fatalf("degenerate cell at +15%% not flagged: %+v", d.Regressions)
	}
	if floored.Gate != "stat (floored)" || floored.Noise == nil {
		t.Errorf("floored cell gate = %q, noise %+v", floored.Gate, floored.Noise)
	}
	if lo, hi := floored.Noise.Lo, floored.Noise.Hi; lo > 0.0901 || lo < 0.0899 || hi > 0.1101 || hi < 0.1099 {
		t.Errorf("floored band = [%v, %v], want ~[0.090, 0.110]", lo, hi)
	}
}

// TestDiffRunsStatDrift: a slow creep that stays inside the (re-
// centering) band every run must still fail against the pinned
// baseline once the history median has drifted beyond the threshold —
// the band answers "is this sample normal lately", the baseline
// answers "lately is not what I signed off on".
func TestDiffRunsStatDrift(t *testing.T) {
	// Cell 0 drifts +10 ms per run; cells 1 and 2 hold still.
	drift := []float64{100, 110, 120, 130, 140}
	var history []RunRecord
	for r := range drift {
		r := r
		history = append(history, NewRun("simbench", fabricateRun(3, func(i int) time.Duration {
			if i == 0 {
				return ms(drift[r])
			}
			return ms(100)
		})))
	}
	// The new sample continues the creep: inside the band around the
	// drifted median (0.12 ± 3·1.4826·0.01 ≈ [0.075, 0.165]), +50 %
	// over the baseline.
	cur := NewRun("simbench", fabricateRun(3, func(i int) time.Duration {
		if i == 0 {
			return ms(150)
		}
		return ms(100)
	}))
	d := DiffRunsStat(history[0], cur, history, StatGate{Threshold: 0.10, Seed: 1})
	if len(d.Regressions) != 1 || d.Regressions[0].Benchmark != "synthetic.0" {
		t.Fatalf("drift not flagged: %+v", d.Regressions)
	}
	r := d.Regressions[0]
	if r.Gate != "stat (drift)" || r.Noise == nil {
		t.Errorf("drift judged by %q, noise %+v", r.Gate, r.Noise)
	}
	if r.Noise.Verdict(r.CurrentSeconds) != stats.Stable {
		t.Errorf("drift sample should be inside the band: %+v vs %+v", r.CurrentSeconds, r.Noise)
	}
	if d.Stable != 2 {
		t.Errorf("stable = %d, want 2", d.Stable)
	}

	// The anchor overrides the band in both directions. A sample
	// *below* the drifted band is still +15 % over the baseline: the
	// band alone would call it improved; the anchor calls it what CI
	// must see, a regression.
	cur2 := NewRun("simbench", fabricateRun(3, func(i int) time.Duration {
		if i == 0 {
			return ms(115)
		}
		return ms(100)
	}))
	d2 := DiffRunsStat(history[0], cur2, history, StatGate{Threshold: 0.10, Seed: 1})
	if len(d2.Regressions) != 1 || d2.Regressions[0].Gate != "stat (drift)" || len(d2.Improvements) != 0 {
		t.Errorf("below-band sample over a drifted history not flagged: %+v", d2)
	}

	// And a just-fixed cell goes green immediately: the median is
	// still drifted, but today's sample sits at the baseline, so CI
	// must not stay red until the stale median ages out.
	cur3 := NewRun("simbench", fabricateRun(3, func(int) time.Duration { return ms(100) }))
	d3 := DiffRunsStat(history[0], cur3, history, StatGate{Threshold: 0.10, Seed: 1})
	if d3.Regressed() || d3.Stable != 3 {
		t.Errorf("recovered cell still failing: %+v", d3)
	}
}

// TestDiffRunsStatDriftDown: the mirror case — history improved well
// past the baseline, and a sample popping back up to the baseline
// level breaches the (low) band. That cell is no worse than what was
// signed off, so the anchor keeps it stable instead of false-alarming.
func TestDiffRunsStatDriftDown(t *testing.T) {
	improved := []float64{100, 82, 80, 81, 80, 79}
	var history []RunRecord
	for r := range improved {
		r := r
		history = append(history, NewRun("simbench", fabricateRun(3, func(i int) time.Duration {
			if i == 0 {
				return ms(improved[r])
			}
			return ms(100)
		})))
	}
	cur := NewRun("simbench", fabricateRun(3, func(int) time.Duration { return ms(100) }))
	g := StatGate{Threshold: 0.10, Seed: 1}
	d := DiffRunsStat(history[0], cur, history, g)
	if d.Regressed() {
		t.Errorf("baseline-level sample flagged as regression over improved history: %+v", d.Regressions)
	}
	if d.Stable != 3 || len(d.Improvements) != 0 {
		t.Errorf("baseline-level sample should be stable vs the anchor: %+v", d)
	}
	// Sanity of the scenario: the sample really does breach the tight
	// improved band — only the anchor keeps it from false-alarming.
	samples := Samples(history)
	for id, xs := range samples {
		if strings.Contains(id, "synthetic.0") {
			if b := g.Band(id, xs); b.Verdict(0.100) != stats.Regressed {
				t.Errorf("scenario too loose, band %+v does not exclude the baseline sample", b)
			}
		}
	}
	// A sample that is genuinely worse than the baseline allows still
	// flags, improved history or not.
	bad := NewRun("simbench", fabricateRun(3, func(i int) time.Duration {
		if i == 0 {
			return ms(115)
		}
		return ms(100)
	}))
	if db := DiffRunsStat(history[0], bad, history, g); !db.Regressed() {
		t.Errorf("+15%% over baseline passed under an improved history: %+v", db)
	}
}

// TestStatGateWindow: the noise model only sees the most recent
// Window runs, so an accepted performance change ages out instead of
// leaving a bimodal, permanently inflated band.
func TestStatGateWindow(t *testing.T) {
	// Ten runs: five at the old 100 ms level, five at the accepted new
	// 130 ms level (with a little spread so the band is not floored).
	level := []float64{100, 100, 100, 100, 100, 130, 131, 129, 130, 130.5}
	var history []RunRecord
	for r := range level {
		r := r
		history = append(history, NewRun("simbench", fabricateRun(1, func(int) time.Duration {
			return ms(level[r])
		})))
	}
	g := StatGate{Threshold: 0.10, Seed: 1, Window: 5}
	b := NoiseLookup(history, g)(history[0].Cells[0])
	if b == nil || b.N != 5 || b.Median < 0.129 || b.Median > 0.131 {
		t.Fatalf("windowed band = %+v, want n=5 centred on the new level", b)
	}
	// The unwindowed pool would be bimodal: MAD spans the level
	// change and the band swallows both levels.
	if b.MAD > 0.005 {
		t.Errorf("windowed MAD = %v, want tight spread at the new level", b.MAD)
	}

	// The window counts fresh samples per cell, not run records:
	// interleaved cached-only reruns (CI retriggers of an unchanged
	// binary) must not push the cell's genuine history out of the
	// window and demote the gate to its fallback.
	for i := 0; i < 10; i++ {
		replay := NewRun("simbench", fabricateRun(1, func(int) time.Duration { return ms(130) }))
		replay.Cells[0].Cached = true
		history = append(history, replay)
	}
	b2 := NoiseLookup(history, g)(history[0].Cells[0])
	if b2 == nil || b2.N != 5 {
		t.Errorf("cached reruns evicted the fresh window: %+v", b2)
	}
}

// TestDiffRunsStatFallback: cells without enough history are judged by
// the fixed threshold, and say so.
func TestDiffRunsStatFallback(t *testing.T) {
	history := gateHistory()[:3]
	d := DiffRunsStat(history[0], currentRun(100), history, StatGate{Threshold: 0.10, Seed: 1})
	if len(d.Regressions) != 1 || d.Regressions[0].Benchmark != "synthetic.0" {
		t.Fatalf("fallback regressions = %+v", d.Regressions)
	}
	r := d.Regressions[0]
	if r.Gate != "fixed (history n=3)" || r.Noise != nil {
		t.Errorf("fallback gate = %q, noise %+v", r.Gate, r.Noise)
	}
}

func TestCellNames(t *testing.T) {
	rec := report.Record{Benchmark: "mem.hot", Engine: "interp", Arch: "arm", Iters: 64, Repeats: 1}
	if got := CellName(rec); got != "arm/mem.hot/interp@64" {
		t.Errorf("CellName = %q", got)
	}
	rec.Repeats = 3
	if got := CellName(rec); got != "arm/mem.hot/interp@64x3" {
		t.Errorf("CellName with repeats = %q", got)
	}
	if CellID(rec) == CellID(report.Record{Benchmark: "mem.hot", Engine: "interp", Arch: "arm", Iters: 64, Repeats: 1}) {
		t.Error("CellID ignores repeats")
	}
}
