package device

import (
	"bytes"
	"testing"
	"time"
)

func TestUARTTransmit(t *testing.T) {
	var buf bytes.Buffer
	u := &UART{W: &buf}
	for _, c := range []byte("ok!") {
		if !u.Write(UARTTx, 4, uint32(c)) {
			t.Fatal("tx rejected")
		}
	}
	if buf.String() != "ok!" {
		t.Errorf("console %q", buf.String())
	}
	if u.BytesWritten() != 3 {
		t.Errorf("count %d", u.BytesWritten())
	}
	if v, ok := u.Read(UARTStatus, 4); !ok || v&1 != 1 {
		t.Error("status should always report ready")
	}
	if _, ok := u.Read(0x40, 4); ok {
		t.Error("unknown register must reject")
	}
}

func TestUARTNilWriter(t *testing.T) {
	u := &UART{}
	if !u.Write(UARTTx, 4, 'x') {
		t.Error("tx to nil writer should still accept")
	}
}

func TestIntControllerRaiseEnableClear(t *testing.T) {
	var line bool
	ic := NewIntController(func(l bool) { line = l })

	// Raising a disabled line must not assert the output.
	ic.Write(ICRaise, 4, LineSoftware)
	if line {
		t.Error("disabled line asserted IRQ")
	}
	if v, _ := ic.Read(ICRaw, 4); v != 1<<LineSoftware {
		t.Errorf("raw %#x", v)
	}
	if v, _ := ic.Read(ICStatus, 4); v != 0 {
		t.Errorf("status %#x with enable clear", v)
	}

	// Enable it: output asserts immediately (already pending).
	ic.Write(ICEnable, 4, 1<<LineSoftware)
	if !line {
		t.Error("enable did not assert pending line")
	}
	if v, _ := ic.Read(ICStatus, 4); v != 1<<LineSoftware {
		t.Errorf("status %#x", v)
	}

	// Clear: output drops.
	ic.Write(ICClear, 4, LineSoftware)
	if line {
		t.Error("clear did not deassert")
	}
	if ic.RaisedCount() != 1 {
		t.Errorf("raised count %d", ic.RaisedCount())
	}
}

func TestIntControllerMultipleLines(t *testing.T) {
	var line bool
	ic := NewIntController(func(l bool) { line = l })
	ic.Write(ICEnable, 4, 0xFFFFFFFF)
	ic.Raise(3)
	ic.Raise(7)
	if v, _ := ic.Read(ICRaw, 4); v != (1<<3)|(1<<7) {
		t.Errorf("raw %#x", v)
	}
	ic.Write(ICClear, 4, 3)
	if !line {
		t.Error("line must stay asserted while any enabled line pending")
	}
	ic.Write(ICClear, 4, 7)
	if line {
		t.Error("line must drop when all cleared")
	}
}

func TestTimerFiresOnCompare(t *testing.T) {
	var line bool
	ic := NewIntController(func(l bool) { line = l })
	ic.Write(ICEnable, 4, 1<<LineTimer)
	tm := NewTimer(ic)
	tm.Write(TimerCompare, 4, 100)
	tm.Write(TimerCtrl, 4, 1)
	tm.Tick(50)
	if line {
		t.Error("fired early")
	}
	tm.Tick(50)
	if !line {
		t.Error("did not fire on crossing")
	}
	if v, _ := tm.Read(TimerCount, 4); v != 100 {
		t.Errorf("count %d", v)
	}
	// Re-arming above the count and ticking past fires again.
	ic.Write(ICClear, 4, LineTimer)
	tm.Write(TimerCompare, 4, 150)
	tm.Tick(60)
	if !line {
		t.Error("did not fire after rearm")
	}
}

func TestTimerDisabled(t *testing.T) {
	ic := NewIntController(nil)
	tm := NewTimer(ic)
	tm.Write(TimerCompare, 4, 10)
	tm.Tick(100) // disabled: no count, no fire
	if v, _ := tm.Read(TimerCount, 4); v != 0 {
		t.Errorf("disabled timer counted to %d", v)
	}
	if ic.Pending() != 0 {
		t.Error("disabled timer raised")
	}
}

func TestSafeDev(t *testing.T) {
	d := &SafeDev{}
	if v, ok := d.Read(SafeID, 4); !ok || v != SafeIDValue {
		t.Errorf("id %#x", v)
	}
	d.Write(SafeScratch, 4, 99)
	if v, _ := d.Read(SafeScratch, 4); v != 99 {
		t.Errorf("scratch %d", v)
	}
	d.Write(SafeLED, 4, 1)
	if v, _ := d.Read(SafeLED, 4); v != 1 {
		t.Errorf("led %d", v)
	}
	if d.Accesses() != 5 {
		t.Errorf("accesses %d", d.Accesses())
	}
	if _, ok := d.Read(0x100, 4); ok {
		t.Error("unknown register accepted")
	}
}

func TestBenchCtlProtocol(t *testing.T) {
	now := time.Unix(0, 0)
	c := &BenchCtl{Iters: 0x1_0000_0002, Now: func() time.Time {
		now = now.Add(time.Second)
		return now
	}}
	if v, _ := c.Read(CtlIterLo, 4); v != 2 {
		t.Errorf("iter lo %d", v)
	}
	if v, _ := c.Read(CtlIterHi, 4); v != 1 {
		t.Errorf("iter hi %d", v)
	}
	if v, _ := c.Read(CtlMagic, 4); v != CtlMagicValue {
		t.Errorf("magic %#x", v)
	}
	c.Write(CtlBegin, 4, 0)
	c.Write(CtlEnd, 4, 0)
	if !c.Began || !c.Ended {
		t.Error("begin/end not recorded")
	}
	if c.KernelTime() != time.Second {
		t.Errorf("kernel time %v", c.KernelTime())
	}
	c.Write(CtlResult, 4, 42)
	c.Write(CtlResult, 4, 43)
	if len(c.Results) != 2 || c.Results[1] != 43 {
		t.Errorf("results %v", c.Results)
	}
	c.Write(CtlPhase, 4, 2)
	if v, _ := c.Read(CtlPhase, 4); v != 2 {
		t.Errorf("phase %d", v)
	}
	c.Write(CtlAbort, 4, 7)
	if c.AbortedWith == nil || *c.AbortedWith != 7 {
		t.Error("abort not recorded")
	}
}

func TestSafeCoproc(t *testing.T) {
	c := &SafeCoproc{}
	c.Write(CPRegDACR, 0x55)
	if v, ok := c.Read(CPRegDACR); !ok || v != 0x55 {
		t.Errorf("dacr %#x ok=%v", v, ok)
	}
	// Reset clears the state block and stores the written value.
	if !c.Write(CPRegReset, 9) {
		t.Error("reset rejected")
	}
	if v, _ := c.Read(CPRegState); v != 9 {
		t.Errorf("state %d", v)
	}
	if _, ok := c.Read(99); ok {
		t.Error("unknown coproc register accepted")
	}
	if c.Accesses() != 5 {
		t.Errorf("accesses %d", c.Accesses())
	}
}
