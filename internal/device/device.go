// Package device implements the simulated platform devices: a UART, an
// interrupt controller with software-raisable lines, a timer, the
// side-effect-free "safe" device that the I/O benchmark reads, the
// benchmark-control port through which guest code talks to the host
// harness, and the safe coprocessor used by the coprocessor benchmark.
//
// These are the uncore components that distinguish full-system from
// user-mode simulation (paper Fig. 1): every one of them is reachable
// only through guest physical addresses or coprocessor instructions.
package device

import (
	"io"
	"time"
)

// --- UART -----------------------------------------------------------------

// UART register offsets.
const (
	UARTTx     = 0x00 // write: transmit byte
	UARTStatus = 0x04 // read: bit0 = tx ready (always set)
)

// UART is a write-only serial port backed by an io.Writer; the guest's
// console output lands there. Reads of the status register always
// report ready, so guests never need to spin.
type UART struct {
	W io.Writer
	n int
}

func (u *UART) Name() string { return "uart" }

// Read implements mem.Device.
func (u *UART) Read(off uint32, size int) (uint32, bool) {
	switch off {
	case UARTStatus:
		return 1, true
	case UARTTx:
		return 0, true
	}
	return 0, false
}

// Write implements mem.Device.
func (u *UART) Write(off uint32, size int, v uint32) bool {
	switch off {
	case UARTTx:
		if u.W != nil {
			u.W.Write([]byte{byte(v)})
		}
		u.n++
		return true
	case UARTStatus:
		return true
	}
	return false
}

// BytesWritten reports how many bytes the guest transmitted.
func (u *UART) BytesWritten() int { return u.n }

// --- Interrupt controller ---------------------------------------------------

// Interrupt controller register offsets.
const (
	ICStatus   = 0x00 // read: pending & enabled
	ICRaw      = 0x04 // read: pending
	ICEnable   = 0x08 // read/write: enable mask
	ICRaise    = 0x0C // write: raise line (value = line number), the SWI mechanism
	ICClear    = 0x10 // write: clear line (value = line number)
	ICIPISet   = 0x14 // write: assert the IPI doorbell for cores in mask; read: pending mask
	ICIPIClear = 0x18 // write: clear the IPI doorbell for cores in mask
)

// Lines on the interrupt controller.
const (
	LineSoftware = 0 // software-generated interrupt (SimBench exc.swi)
	LineTimer    = 1
	NumLines     = 32
)

// IntController is a simple 32-line interrupt controller. Software can
// raise any line by writing its number to ICRaise — the mechanism the
// External Software Interrupt benchmark uses. Shared device lines are
// routed to core 0 as (pending & enabled) != 0, exactly the pre-SMP
// single-output behaviour; each additional core's IRQ line is driven
// by its bit in the software IPI doorbell (ICIPISet/ICIPIClear), which
// also reaches core 0.
type IntController struct {
	pending uint32
	enabled uint32
	ipi     uint32       // per-core IPI doorbell bits
	outs    []func(bool) // per-core IRQ lines to the CPUs; index = core
	raised  uint64
	ipis    uint64
}

// NewIntController creates a controller that drives the given IRQ line
// (core 0's).
func NewIntController(out func(bool)) *IntController {
	return &IntController{outs: []func(bool){out}}
}

// AddOutput attaches one more per-core IRQ line and returns its core
// index. The platform calls it once per secondary hart, in hart order.
func (ic *IntController) AddOutput(out func(bool)) int {
	ic.outs = append(ic.outs, out)
	return len(ic.outs) - 1
}

// IPICount reports how many doorbell raises have occurred.
func (ic *IntController) IPICount() uint64 { return ic.ipis }

func (ic *IntController) Name() string { return "intc" }

func (ic *IntController) update() {
	for core, out := range ic.outs {
		if out == nil {
			continue
		}
		level := ic.ipi&(1<<uint(core)) != 0
		if core == 0 {
			level = level || ic.pending&ic.enabled != 0
		}
		out(level)
	}
}

// Raise asserts a line from the host side (e.g. the timer).
func (ic *IntController) Raise(line uint32) {
	ic.pending |= 1 << (line % NumLines)
	ic.raised++
	ic.update()
}

// RaisedCount reports how many raises have occurred (tested-op counter).
func (ic *IntController) RaisedCount() uint64 { return ic.raised }

// Pending returns the raw pending mask.
func (ic *IntController) Pending() uint32 { return ic.pending }

// Read implements mem.Device.
func (ic *IntController) Read(off uint32, size int) (uint32, bool) {
	switch off {
	case ICStatus:
		return ic.pending & ic.enabled, true
	case ICRaw:
		return ic.pending, true
	case ICEnable:
		return ic.enabled, true
	case ICIPISet:
		return ic.ipi, true
	}
	return 0, false
}

// Write implements mem.Device.
func (ic *IntController) Write(off uint32, size int, v uint32) bool {
	switch off {
	case ICEnable:
		ic.enabled = v
		ic.update()
	case ICRaise:
		ic.Raise(v)
	case ICClear:
		ic.pending &^= 1 << (v % NumLines)
		ic.update()
	case ICIPISet:
		ic.ipi |= v
		ic.ipis++
		ic.update()
	case ICIPIClear:
		ic.ipi &^= v
		ic.update()
	default:
		return false
	}
	return true
}

// --- Timer ------------------------------------------------------------------

// Timer register offsets.
const (
	TimerCount   = 0x00 // read/write: current count
	TimerCompare = 0x04 // read/write: raise IRQ when count reaches this
	TimerCtrl    = 0x08 // bit0: enable
)

// Timer is an instruction-clocked count/compare timer that raises
// LineTimer on the interrupt controller when it fires. Engines call
// Tick with retired-instruction deltas.
type Timer struct {
	count   uint32
	compare uint32
	enabled bool
	ic      *IntController
}

// NewTimer wires a timer to an interrupt controller.
func NewTimer(ic *IntController) *Timer { return &Timer{ic: ic} }

func (t *Timer) Name() string { return "timer" }

// Tick advances the count by n and fires if the compare value is crossed.
func (t *Timer) Tick(n uint32) {
	if !t.enabled {
		return
	}
	before := t.count
	t.count += n
	if before < t.compare && t.count >= t.compare {
		t.ic.Raise(LineTimer)
	}
}

// Read implements mem.Device.
func (t *Timer) Read(off uint32, size int) (uint32, bool) {
	switch off {
	case TimerCount:
		return t.count, true
	case TimerCompare:
		return t.compare, true
	case TimerCtrl:
		if t.enabled {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// Write implements mem.Device.
func (t *Timer) Write(off uint32, size int, v uint32) bool {
	switch off {
	case TimerCount:
		t.count = v
	case TimerCompare:
		t.compare = v
	case TimerCtrl:
		t.enabled = v&1 != 0
	default:
		return false
	}
	return true
}

// --- Safe device --------------------------------------------------------------

// SafeDev register offsets.
const (
	SafeID      = 0x00 // read: constant device ID
	SafeScratch = 0x04 // read/write: no side effects
	SafeLED     = 0x08 // write: toggles a virtual LED
)

// SafeIDValue is the constant the ID register returns.
const SafeIDValue = 0x51AFEDE5

// SafeDev is the paper's "safe" memory-mapped device: reading its ID
// register has no side effects and requires no processing, so accesses
// measure pure MMIO dispatch cost.
type SafeDev struct {
	scratch  uint32
	led      uint32
	accesses uint64
}

func (s *SafeDev) Name() string { return "safedev" }

// Accesses reports the tested-op counter for the I/O benchmark.
func (s *SafeDev) Accesses() uint64 { return s.accesses }

// Read implements mem.Device.
func (s *SafeDev) Read(off uint32, size int) (uint32, bool) {
	s.accesses++
	switch off {
	case SafeID:
		return SafeIDValue, true
	case SafeScratch:
		return s.scratch, true
	case SafeLED:
		return s.led, true
	}
	return 0, false
}

// Write implements mem.Device.
func (s *SafeDev) Write(off uint32, size int, v uint32) bool {
	s.accesses++
	switch off {
	case SafeScratch:
		s.scratch = v
	case SafeLED:
		s.led = v & 1
	default:
		return false
	}
	return true
}

// --- Benchmark control port ---------------------------------------------------

// BenchCtl register offsets.
const (
	CtlIterLo = 0x00 // read: configured iteration count, low word
	CtlIterHi = 0x04 // read: high word
	CtlBegin  = 0x08 // write: start the timed kernel phase
	CtlEnd    = 0x0C // write: end the timed kernel phase
	CtlPhase  = 0x10 // write: phase progress marker
	CtlResult = 0x14 // write: report a checksum / result word
	CtlAbort  = 0x18 // write: guest-detected failure, value = code
	CtlMagic  = 0x1C // read: constant, lets guests probe for the port
)

// CtlMagicValue identifies the benchmark-control device.
const CtlMagicValue = 0x5B3C0DE5

// BenchCtl is the benchmark-control port: the channel through which a
// bare-metal SimBench guest reports phase transitions to the harness.
// The host timestamps the Begin/End writes, which implements the
// paper's "only the benchmark kernel itself is timed" rule without any
// guest-visible clock.
type BenchCtl struct {
	Iters       uint64
	BeginAt     time.Time
	EndAt       time.Time
	Began       bool
	Ended       bool
	Phase       uint32
	Results     []uint32
	AbortedWith *uint32

	// Now is the clock used for timestamps; it defaults to time.Now
	// and is replaceable for tests.
	Now func() time.Time
}

func (c *BenchCtl) Name() string { return "benchctl" }

func (c *BenchCtl) now() time.Time {
	if c.Now != nil {
		return c.Now()
	}
	return time.Now()
}

// KernelTime returns the timed-kernel duration, valid once Ended.
func (c *BenchCtl) KernelTime() time.Duration { return c.EndAt.Sub(c.BeginAt) }

// Read implements mem.Device.
func (c *BenchCtl) Read(off uint32, size int) (uint32, bool) {
	switch off {
	case CtlIterLo:
		return uint32(c.Iters), true
	case CtlIterHi:
		return uint32(c.Iters >> 32), true
	case CtlMagic:
		return CtlMagicValue, true
	case CtlPhase:
		return c.Phase, true
	}
	return 0, false
}

// Write implements mem.Device.
func (c *BenchCtl) Write(off uint32, size int, v uint32) bool {
	switch off {
	case CtlBegin:
		c.BeginAt = c.now()
		c.Began = true
	case CtlEnd:
		c.EndAt = c.now()
		c.Ended = true
	case CtlPhase:
		c.Phase = v
	case CtlResult:
		c.Results = append(c.Results, v)
	case CtlAbort:
		code := v
		c.AbortedWith = &code
	default:
		return false
	}
	return true
}

// --- Safe coprocessor -----------------------------------------------------------

// Safe coprocessor register numbers.
const (
	CPRegDACR  = 0 // arm profile: domain-access-control style register
	CPRegReset = 1 // x86 profile: maths-coprocessor reset
	CPRegState = 2
)

// SafeCoproc is the benchmark coprocessor (CP1). The arm profile reads
// a DACR-like register; the x86 profile "resets the maths coprocessor",
// which clears a small state block — slightly more work, as on real
// hardware. Both are side-effect-free from the guest's point of view.
type SafeCoproc struct {
	dacr     uint32
	state    [8]uint32
	accesses uint64
}

// Accesses reports the tested-op counter for the coprocessor benchmark.
func (c *SafeCoproc) Accesses() uint64 { return c.accesses }

// Read implements machine.Coprocessor.
func (c *SafeCoproc) Read(reg uint32) (uint32, bool) {
	c.accesses++
	switch reg {
	case CPRegDACR:
		return c.dacr, true
	case CPRegState:
		return c.state[0], true
	}
	return 0, false
}

// Write implements machine.Coprocessor.
func (c *SafeCoproc) Write(reg uint32, v uint32) bool {
	c.accesses++
	switch reg {
	case CPRegDACR:
		c.dacr = v
		return true
	case CPRegReset:
		for i := range c.state {
			c.state[i] = 0
		}
		c.state[0] = v
		return true
	}
	return false
}
