// Package simbench is a Go reproduction of "SimBench: A Portable
// Benchmarking Methodology for Full-System Simulators" (Wagstaff,
// Bodin, Spink, Franke — ISPASS 2017).
//
// It provides, from scratch and on the standard library only:
//
//   - SV32, a synthetic 32-bit full-system guest ISA with an MMU,
//     privilege modes, exceptions, coprocessors and memory-mapped I/O,
//     in two architecture profiles (arm-like, x86-like);
//   - five execution engines mirroring the paper's evaluation
//     platforms: a QEMU-style dynamic binary translator, a SimIt-style
//     fast interpreter, a Gem5-style detailed interpreter, and a
//     direct-execution engine in KVM-virtualized and native-hardware
//     modes;
//   - the SimBench methodology: 18 targeted micro-benchmarks in five
//     categories with the three-phase timing protocol;
//   - a SPEC-CPU2006-INT-like synthetic application suite;
//   - twenty modelled QEMU releases for the version-sweep experiments;
//   - drivers that regenerate every table and figure of the paper's
//     evaluation;
//   - a concurrent experiment scheduler and a content-addressed result
//     store with run history and baseline regression detection.
//
// Quick start:
//
//	eng, _ := simbench.NewEngine("dbt")
//	r := simbench.NewRunner(eng, simbench.ARM())
//	res, err := r.Run(simbench.MustBenchmark("exc.syscall"), 100_000)
//	fmt.Println(res.Kernel, err)
//
// See the examples/ directory and the cmd/ tools for more.
package simbench

import (
	"io"

	"simbench/internal/arch"
	"simbench/internal/bench"
	"simbench/internal/core"
	"simbench/internal/engine"
	"simbench/internal/experiment"
	"simbench/internal/figures"
	"simbench/internal/sched"
	"simbench/internal/spec"
	"simbench/internal/store"
	"simbench/internal/versions"
)

// Core methodology types.
type (
	// Benchmark is one SimBench micro-benchmark (or application
	// workload) with its build function, iteration default, tested-op
	// extractor and validator.
	Benchmark = core.Benchmark
	// Result is a validated run outcome: timed kernel, statistics,
	// exception and device counters.
	Result = core.Result
	// Runner executes benchmarks on one engine and guest architecture.
	Runner = core.Runner
	// Env is the build environment a Benchmark emits guest code into.
	Env = core.Env
	// Category groups benchmarks as in the paper's Fig. 3.
	Category = core.Category
	// Engine is an execution platform under test.
	Engine = engine.Engine
	// Stats are engine execution statistics.
	Stats = engine.Stats
	// Arch is an architecture support package (the porting layer).
	Arch = arch.Support
	// Release is a modelled QEMU release for the sweep experiments.
	Release = versions.Release
	// Options are the runtime knobs of an experiment run: output,
	// scale, parallelism, store, cancellation.
	Options = experiment.Options
)

// Declarative experiments: a Spec names its axes, iteration policy
// and renderer; the registry holds the paper's figures as built-in
// specs plus anything the embedding program registers.
type (
	// ExperimentSpec is a declarative experiment description —
	// loadable from JSON, registrable, runnable online or offline.
	ExperimentSpec = experiment.Spec
	// SeriesSpec selects how a series experiment derives its lines.
	SeriesSpec = experiment.SeriesSpec
	// SeriesGroup is one explicit series line.
	SeriesGroup = experiment.SeriesGroup
)

// LoadSpec reads and validates an experiment spec from a JSON file.
func LoadSpec(path string) (ExperimentSpec, error) { return experiment.LoadFile(path) }

// RegisterSpec validates a spec and adds it to the registry, where
// RunAll and `simreport -all` will pick it up in registration order.
func RegisterSpec(sp ExperimentSpec) error { return experiment.Register(sp) }

// Specs returns every registered experiment spec in registration
// order — the paper's figures first.
func Specs() []ExperimentSpec { return experiment.All() }

// SpecByName returns a registered spec.
func SpecByName(name string) (ExperimentSpec, bool) { return experiment.Lookup(name) }

// RunSpec executes a spec on the concurrent scheduler and renders it;
// with a store in the Options, cells are cached and the run lands in
// history under the spec's label.
func RunSpec(sp ExperimentSpec, o Options) error { return experiment.Run(sp, o) }

// RunSpecOffline renders a spec from the Options' store alone: no
// engine constructed, no cell measured, byte-identical to a warm
// online run — or an error naming every cell the store cannot serve.
func RunSpecOffline(sp ExperimentSpec, o Options) error { return experiment.RenderOffline(sp, o) }

// Experiment scheduling: matrices of benchmark × engine × architecture
// cells run on a worker pool, collated in matrix order.
type (
	// Matrix describes an experiment as selections per axis.
	Matrix = sched.Matrix
	// Job is one cell of an experiment matrix.
	Job = sched.Job
	// CellResult is the scheduler's per-cell outcome (Result is the
	// underlying single-run outcome).
	CellResult = sched.Result
	// EngineSpec names an engine and builds a fresh instance per cell.
	EngineSpec = sched.Engine
	// Scheduler runs a job list on a bounded worker pool, optionally
	// backed by a ResultStore.
	Scheduler = sched.Scheduler
)

// CellErrors joins every cell failure of a matrix run into one error,
// nil when the whole matrix succeeded; cancelled cells collapse into
// a single summary line.
func CellErrors(results []CellResult) error { return sched.Errors(results) }

// Result store, run history and regression analysis.
type (
	// ResultStore is the content-addressed result store: cells are
	// keyed by everything that determines their outcome, so repeated
	// and overlapping experiments reuse identical measurements.
	ResultStore = store.Store
	// RunRecord is one timestamped matrix run in a store's history.
	RunRecord = store.RunRecord
	// RunDiff compares two recorded runs cell by cell.
	RunDiff = store.Diff
	// CellDiff is one regressed or improved cell of a RunDiff.
	CellDiff = store.CellDiff
	// RemoteTier is the client side of a simstored server: attach one
	// to a ResultStore and cells read through to (and write back to)
	// the fleet-wide store.
	RemoteTier = store.RemoteTier
)

// OpenStore opens (creating if needed) a result store rooted at dir;
// an empty dir yields an in-process store with no persistence.
func OpenStore(dir string) (*ResultStore, error) { return store.Open(dir) }

// NewRemoteTier builds a client for the simstored server at baseURL
// (e.g. "http://ci-cache:8347"), for ResultStore.AttachRemote.
func NewRemoteTier(baseURL string) (*RemoteTier, error) { return store.NewRemoteTier(baseURL) }

// NewRun flattens a completed matrix into a history record, the input
// to DiffRuns and ResultStore.SaveBaseline.
func NewRun(label string, results []CellResult) RunRecord { return store.NewRun(label, results) }

// DiffRuns compares two recorded runs cell by cell, flagging cells
// whose kernel time regressed (or improved) beyond the threshold
// (0.10 = 10 %).
func DiffRuns(base, current RunRecord, threshold float64) RunDiff {
	return store.DiffRuns(base, current, threshold)
}

// Benchmark categories.
const (
	CatCodeGen     = core.CatCodeGen
	CatControlFlow = core.CatControlFlow
	CatException   = core.CatException
	CatIO          = core.CatIO
	CatMemory      = core.CatMemory
	CatApplication = spec.CatApplication
)

// Suite returns the 18 SimBench micro-benchmarks in paper order.
func Suite() []*Benchmark { return bench.Suite() }

// SpecSuite returns the ten SPEC-INT-like application workloads.
func SpecSuite() []*Benchmark { return spec.Suite() }

// ExtSuite returns the extension benchmarks beyond the paper's 18
// (the future-work direction of the paper: additional targeted
// benchmarks, including a direct interrupt-latency measurement).
func ExtSuite() []*Benchmark { return bench.ExtSuite() }

// BenchmarkByName finds a micro-benchmark or application workload.
func BenchmarkByName(name string) (*Benchmark, error) {
	if b, err := bench.ByName(name); err == nil {
		return b, nil
	}
	return spec.ByName(name)
}

// MustBenchmark is BenchmarkByName, panicking on unknown names.
func MustBenchmark(name string) *Benchmark {
	b, err := BenchmarkByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

// NewEngine builds an execution engine: "dbt", "interp", "detailed",
// "virt", "native", "profile", or a modelled QEMU release tag such as
// "v2.2.0".
func NewEngine(name string) (Engine, error) { return experiment.EngineByName(name) }

// Engines returns the five evaluation platforms in the paper's order.
func Engines() []Engine { return experiment.Engines() }

// ARM returns the arm-like architecture support package.
func ARM() Arch { return arch.ARM{} }

// X86 returns the x86-like architecture support package.
func X86() Arch { return arch.X86{} }

// Architectures returns both guest architecture profiles.
func Architectures() []Arch { return arch.All() }

// NewRunner builds a benchmark runner with default machine sizing.
func NewRunner(eng Engine, sup Arch) *Runner { return core.NewRunner(eng, sup) }

// Releases returns the twenty modelled QEMU releases in order.
func Releases() []Release { return versions.All() }

// ReleaseByName finds a modelled release.
func ReleaseByName(name string) (Release, error) { return versions.ByName(name) }

// Figure drivers: regenerate each table/figure of the paper.
var (
	Fig2 = figures.Fig2
	Fig3 = figures.Fig3
	Fig4 = figures.Fig4
	Fig5 = figures.Fig5
	Fig6 = figures.Fig6
	Fig7 = figures.Fig7
	Fig8 = figures.Fig8
)

// RunAll regenerates the whole evaluation into w at the given scales:
// the static platform tables (Figs. 4 and 5), then every registered
// experiment spec in registry order — so a spec added with
// RegisterSpec appears here automatically, after the paper's figures.
func RunAll(w io.Writer, scale, specScale int64) error {
	opts := Options{Out: w, Scale: scale, SpecScale: specScale}
	for _, f := range []func(Options) error{Fig4, Fig5} {
		if err := f(opts); err != nil {
			return err
		}
	}
	for _, sp := range experiment.All() {
		if err := experiment.Run(sp, opts); err != nil {
			return err
		}
	}
	return nil
}
