// Benchmark harness: one testing.B benchmark per paper table/figure,
// plus engine micro-benchmarks and ablation benchmarks for the design
// choices the engines embody. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks use aggressive iteration scaling so a full
// pass completes in minutes; use the cmd/ tools with smaller -scale
// values for higher-fidelity runs.
package simbench

import (
	"io"
	"testing"

	"simbench/internal/arch"
	"simbench/internal/core"
	"simbench/internal/engine/dbt"
)

// figOpts returns options small enough for go test -bench.
func figOpts() Options {
	return Options{Out: io.Discard, Scale: 100_000, SpecScale: 3000, MinIters: 16}
}

func BenchmarkFig2SPECSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := Fig2(figOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3OperationDensity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := Fig3(figOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := Fig4(figOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5PlatformTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := Fig5(figOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6CategorySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := Fig6(figOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7FullMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := Fig7(figOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8GeomeanSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := Fig8(figOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- engine micro-benchmarks: guest instructions per second on a
// standard compute kernel (the per-engine speed the paper's analysis
// reasons about).

func benchmarkEngine(b *testing.B, engineName string, benchName string, iters int64) {
	b.Helper()
	eng, err := NewEngine(engineName)
	if err != nil {
		b.Fatal(err)
	}
	bm := MustBenchmark(benchName)
	r := NewRunner(eng, ARM())
	var insns uint64
	for i := 0; i < b.N; i++ {
		res, err := r.Run(bm, iters)
		if err != nil {
			b.Fatal(err)
		}
		insns += res.Stats.Instructions
	}
	b.ReportMetric(float64(insns)/b.Elapsed().Seconds()/1e6, "Mips")
}

func BenchmarkEngineInterpHotLoop(b *testing.B)   { benchmarkEngine(b, "interp", "mem.hot", 20_000) }
func BenchmarkEngineDBTHotLoop(b *testing.B)      { benchmarkEngine(b, "dbt", "mem.hot", 20_000) }
func BenchmarkEngineDetailedHotLoop(b *testing.B) { benchmarkEngine(b, "detailed", "mem.hot", 20_000) }
func BenchmarkEngineVirtHotLoop(b *testing.B)     { benchmarkEngine(b, "virt", "mem.hot", 20_000) }
func BenchmarkEngineNativeHotLoop(b *testing.B)   { benchmarkEngine(b, "native", "mem.hot", 20_000) }

// --- ablation benchmarks: each isolates one DBT design choice from
// DESIGN.md by measuring the same workload under configs differing in
// exactly that choice.

func benchmarkDBTConfig(b *testing.B, cfg dbt.Config, benchName string, iters int64) {
	b.Helper()
	bm := MustBenchmark(benchName)
	r := core.NewRunner(dbt.New(cfg), arch.ARM{})
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(bm, iters); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationChainingOn(b *testing.B) {
	cfg := dbt.DefaultConfig()
	cfg.Chain = dbt.ChainDirect
	benchmarkDBTConfig(b, cfg, "ctrl.intrapage-direct", 100_000)
}

func BenchmarkAblationChainingChecked(b *testing.B) {
	cfg := dbt.DefaultConfig()
	cfg.Chain = dbt.ChainChecked
	benchmarkDBTConfig(b, cfg, "ctrl.intrapage-direct", 100_000)
}

func BenchmarkAblationChainingOff(b *testing.B) {
	cfg := dbt.DefaultConfig()
	cfg.Chain = dbt.ChainNone
	benchmarkDBTConfig(b, cfg, "ctrl.intrapage-direct", 100_000)
}

func BenchmarkAblationOptLevel0(b *testing.B) {
	cfg := dbt.DefaultConfig()
	cfg.OptLevel = 0
	benchmarkDBTConfig(b, cfg, "spec.sjeng", 2_000)
}

func BenchmarkAblationOptLevel2(b *testing.B) {
	cfg := dbt.DefaultConfig()
	cfg.OptLevel = 2
	benchmarkDBTConfig(b, cfg, "spec.sjeng", 2_000)
}

func BenchmarkAblationVictimTLBOn(b *testing.B) {
	cfg := dbt.DefaultConfig()
	cfg.VictimTLB = true
	benchmarkDBTConfig(b, cfg, "mem.cold", 20_000)
}

func BenchmarkAblationVictimTLBOff(b *testing.B) {
	cfg := dbt.DefaultConfig()
	cfg.VictimTLB = false
	benchmarkDBTConfig(b, cfg, "mem.cold", 20_000)
}

func BenchmarkAblationLazyFlushOn(b *testing.B) {
	cfg := dbt.DefaultConfig()
	cfg.LazyFlush = true
	benchmarkDBTConfig(b, cfg, "mem.tlb-flush", 5_000)
}

func BenchmarkAblationLazyFlushOff(b *testing.B) {
	cfg := dbt.DefaultConfig()
	cfg.LazyFlush = false
	benchmarkDBTConfig(b, cfg, "mem.tlb-flush", 5_000)
}

func BenchmarkAblationSuperblockOn(b *testing.B) {
	cfg := dbt.DefaultConfig()
	cfg.Superblock = 8
	benchmarkDBTConfig(b, cfg, "ctrl.intrapage-direct", 100_000)
}

func BenchmarkAblationSuperblockOff(b *testing.B) {
	cfg := dbt.DefaultConfig()
	cfg.Superblock = 1
	benchmarkDBTConfig(b, cfg, "ctrl.intrapage-direct", 100_000)
}

func BenchmarkAblationDataFaultFastPathOn(b *testing.B) {
	cfg := dbt.DefaultConfig()
	cfg.DataFaultFastPath = true
	benchmarkDBTConfig(b, cfg, "exc.data-fault", 20_000)
}

func BenchmarkAblationDataFaultFastPathOff(b *testing.B) {
	cfg := dbt.DefaultConfig()
	cfg.DataFaultFastPath = false
	benchmarkDBTConfig(b, cfg, "exc.data-fault", 20_000)
}
