package simbench

import (
	"strings"
	"testing"
)

func TestPublicSurface(t *testing.T) {
	if len(Suite()) != 18 {
		t.Errorf("suite size %d", len(Suite()))
	}
	if len(SpecSuite()) != 10 {
		t.Errorf("spec size %d", len(SpecSuite()))
	}
	if len(Releases()) != 20 {
		t.Errorf("releases %d", len(Releases()))
	}
	if len(Engines()) != 5 {
		t.Errorf("engines %d", len(Engines()))
	}
	if len(Architectures()) != 2 {
		t.Errorf("architectures %d", len(Architectures()))
	}
	for _, name := range []string{"dbt", "interp", "detailed", "virt", "native", "v1.7.0"} {
		if _, err := NewEngine(name); err != nil {
			t.Errorf("NewEngine(%s): %v", name, err)
		}
	}
	if _, err := NewEngine("bogus"); err == nil {
		t.Error("bogus engine accepted")
	}
	if _, err := BenchmarkByName("exc.undef"); err != nil {
		t.Error(err)
	}
	if _, err := BenchmarkByName("spec.mcf"); err != nil {
		t.Error(err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := ReleaseByName("v2.0.0"); err != nil {
		t.Error(err)
	}
}

func TestMustBenchmarkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustBenchmark("nope")
}

func TestEndToEndViaFacade(t *testing.T) {
	eng, err := NewEngine("interp")
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewRunner(eng, ARM()).Run(MustBenchmark("exc.syscall"), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exc[2] != 100 {
		t.Errorf("syscalls %d", res.Exc[2])
	}
}

func TestRunAllTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	var sb strings.Builder
	if err := RunAll(&sb, 2_000_000, 10_000); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, fig := range []string{"Fig. 2", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7", "Fig. 8"} {
		if !strings.Contains(out, fig) {
			t.Errorf("missing %s", fig)
		}
	}
}

func TestGuestSurfaceCompiles(t *testing.T) {
	// The guest-programming aliases must be usable (compile-time check
	// plus a trivial runtime assertion).
	var r Reg = R11
	var c Cond = CondNE
	if r != 11 || c == CondAL {
		t.Error("alias values wrong")
	}
}
