// Regressionhunt reproduces the paper's §III-B3 workflow: SPEC-style
// application results show QEMU getting slower release by release, but
// cannot say why. Sweeping one targeted SimBench benchmark across the
// modelled releases pinpoints the release that introduced the control
// flow regression — and the release notes name the design change.
//
//	go run ./examples/regressionhunt
package main

import (
	"fmt"
	"log"

	"simbench"
)

func main() {
	bench := simbench.MustBenchmark("ctrl.intrapage-direct")
	const iters = 300_000

	fmt.Println("Sweeping", bench.Name, "across QEMU releases...")
	fmt.Printf("%-12s %-12s %s\n", "release", "kernel", "vs previous")

	type point struct {
		rel    simbench.Release
		kernel float64
	}
	var history []point
	worst := 0
	worstDrop := 0.0

	for _, rel := range simbench.Releases() {
		runner := simbench.NewRunner(rel.Engine(), simbench.ARM())
		// Two runs, best-of, to suppress host noise.
		best := 0.0
		for rep := 0; rep < 2; rep++ {
			res, err := runner.Run(bench, iters)
			if err != nil {
				log.Fatal(err)
			}
			s := res.Kernel.Seconds()
			if rep == 0 || s < best {
				best = s
			}
		}
		history = append(history, point{rel, best})
		n := len(history)
		delta := "-"
		if n > 1 {
			change := history[n-1].kernel/history[n-2].kernel - 1
			delta = fmt.Sprintf("%+.1f%%", change*100)
			if change > worstDrop {
				worstDrop = change
				worst = n - 1
			}
		}
		fmt.Printf("%-12s %-12.4fs %s\n", rel.Name, best, delta)
	}

	culprit := history[worst]
	fmt.Printf("\nLargest regression introduced by %s (%.1f%% slower).\n",
		culprit.rel.Name, worstDrop*100)
	fmt.Printf("Release notes: %s\n", culprit.rel.Notes)
	fmt.Println("\nThis is the paper's point: application benchmarks can show THAT")
	fmt.Println("a simulator regressed; the targeted micro-benchmark shows WHERE,")
	fmt.Println("and the per-release configuration deltas show WHY.")
}
