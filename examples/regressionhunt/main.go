// Regressionhunt reproduces the paper's §III-B3 workflow on the
// result-store API: SPEC-style application results show QEMU getting
// slower release by release, but cannot say why. Sweeping one targeted
// SimBench benchmark across the modelled releases pinpoints the
// release that introduced the control flow regression — and the
// release notes name the design change.
//
// The sweep runs as a scheduler matrix backed by a content-addressed
// result store, so re-running it is free (every cell is a cache hit),
// and the hunt itself is phrased as the store's run-diff: the releases
// before the change are the baseline, the sweep is the current run,
// and DiffRuns flags the regressed cells — the same save/diff workflow
// cmd/simbase runs in CI.
//
//	go run ./examples/regressionhunt
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"simbench"
)

const iters = 300_000

// sweep runs one benchmark across every modelled release on the
// store-backed scheduler and returns the per-cell results in release
// order.
func sweep(st *simbench.ResultStore, b *simbench.Benchmark) []simbench.CellResult {
	var engines []simbench.EngineSpec
	for _, rel := range simbench.Releases() {
		rel := rel
		engines = append(engines, simbench.EngineSpec{
			Name: rel.Name,
			New:  func() simbench.Engine { return rel.Engine() },
		})
	}
	m := simbench.Matrix{
		Arches:  []simbench.Arch{simbench.ARM()},
		Benches: []*simbench.Benchmark{b},
		Engines: engines,
		Iters:   func(*simbench.Benchmark) int64 { return iters },
		Repeats: 2, // best-of-two, to suppress host noise
	}
	s := simbench.Scheduler{Warmup: true, Store: st}
	results := s.Run(context.Background(), m.Jobs())
	if err := simbench.CellErrors(results); err != nil {
		log.Fatal(err)
	}
	return results
}

func main() {
	b := simbench.MustBenchmark("ctrl.intrapage-direct")
	st, err := simbench.OpenStore("") // in-process; pass a directory to persist
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Sweeping", b.Name, "across QEMU releases...")
	results := sweep(st, b)

	fmt.Printf("%-12s %-12s %s\n", "release", "kernel", "vs previous")
	for i, r := range results {
		delta := "-"
		if i > 0 {
			change := r.Kernel.Seconds()/results[i-1].Kernel.Seconds() - 1
			delta = fmt.Sprintf("%+.1f%%", change*100)
		}
		fmt.Printf("%-12s %-12s %s\n", r.Job.Engine.Name, fmt.Sprintf("%.4fs", r.Kernel.Seconds()), delta)
	}

	// The hunt as a store diff: pretend each release is "yesterday's
	// baseline" for its successor — exactly what CI does with
	// `simbase save` / `simbase diff` — and let the run-diff flag the
	// release whose drop exceeds the noise threshold. To make the
	// cells comparable run-to-run, both runs use the engine's stable
	// display name ("qemu"), the way a real tree keeps its name while
	// its code changes.
	const threshold = 0.10
	var culprit simbench.Release
	var worst simbench.CellDiff
	releases := simbench.Releases()
	for i := 1; i < len(results); i++ {
		base := relabelled(results[i-1])
		cur := relabelled(results[i])
		d := simbench.DiffRuns(base, cur, threshold)
		if len(d.Regressions) > 0 && d.Regressions[0].Delta > worst.Delta {
			worst = d.Regressions[0]
			culprit = releases[i]
		}
	}
	if culprit.Name == "" {
		fmt.Printf("\nNo release-to-release regression beyond %.0f%%.\n", threshold*100)
		os.Exit(0)
	}

	fmt.Printf("\nDiff flags %s: %s slower than %s allows (%.3fs -> %.3fs, %+.1f%%).\n",
		culprit.Name, worst.Cell(), fmt.Sprintf("±%.0f%%", threshold*100),
		worst.BaseSeconds, worst.CurrentSeconds, worst.Delta*100)
	fmt.Printf("Release notes: %s\n", culprit.Notes)

	// And the incremental-sweep half of the story: the same sweep
	// again is served entirely from the store.
	h0, m0 := st.Stats()
	_ = sweep(st, b)
	hits, misses := st.Stats()
	fmt.Printf("\nRe-running the sweep: %d cache hits, %d misses — incremental sweeps are free.\n", hits-h0, misses-m0)

	fmt.Println("\nThis is the paper's point: application benchmarks can show THAT")
	fmt.Println("a simulator regressed; the targeted micro-benchmark shows WHERE,")
	fmt.Println("and the per-release configuration deltas show WHY.")
}

// relabelled turns one cell into a single-cell run record under the
// engine's stable display name, so successive releases diff as the
// same cell.
func relabelled(r simbench.CellResult) simbench.RunRecord {
	r.Job.Engine.Name = "qemu"
	return simbench.NewRun("hunt", []simbench.CellResult{r})
}
