// Customspec: ship an experiment as data. A JSON spec file describes
// a sweep the paper never ran — three hot-path benchmarks across five
// QEMU releases — and the declarative experiment layer runs it,
// records it in a result store under the spec's own label, and then
// renders it again offline: straight from the store, no engine
// constructed, no cell re-measured, byte-identical output.
//
// The same file works on the CLIs:
//
//	simsweep -spec examples/customspec/spec.json -cache-dir /tmp/c
//	simreport -spec examples/customspec/spec.json -offline -cache-dir /tmp/c
//
//	go run ./examples/customspec
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"simbench"
)

func main() {
	spec, err := simbench.LoadSpec(filepath.Join("examples", "customspec", "spec.json"))
	if err != nil {
		// Running from inside the example directory instead.
		if spec, err = simbench.LoadSpec("spec.json"); err != nil {
			log.Fatal(err)
		}
	}

	cacheDir, err := os.MkdirTemp("", "customspec-cache-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	store, err := simbench.OpenStore(cacheDir)
	if err != nil {
		log.Fatal(err)
	}

	// Online: measure every cell (tiny scale — this is a demo), cache
	// the results, and record the run in history as "hotpaths".
	var online bytes.Buffer
	opts := simbench.Options{Out: &online, Scale: 100_000, MinIters: 64, Repeats: 1, Store: store}
	if err := simbench.RunSpec(spec, opts); err != nil {
		log.Fatal(err)
	}
	fmt.Print(online.String())

	// Offline: a fresh store handle (pretend this is another process,
	// days later) renders the same figure without measuring anything.
	store2, err := simbench.OpenStore(cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	var offline bytes.Buffer
	opts.Out = &offline
	opts.Store = store2
	if err := simbench.RunSpecOffline(spec, opts); err != nil {
		log.Fatal(err)
	}

	if bytes.Equal(online.Bytes(), offline.Bytes()) {
		fmt.Println("offline render from the store is byte-identical to the measured run")
	} else {
		log.Fatal("offline render diverged from the measured run")
	}
}
