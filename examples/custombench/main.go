// Custombench extends the SimBench suite with a user-defined
// micro-benchmark, written entirely against the public API: an
// "exception storm" that alternates system calls and undefined
// instructions in one kernel, measuring how a simulator handles
// *mixed* exception traffic rather than a single class. This is the
// paper's extensibility claim in action: a new benchmark is a build
// function plus metadata; the protocol, timing, validation, engines
// and reporting all come from the framework.
//
//	go run ./examples/custombench
package main

import (
	"fmt"
	"log"

	"simbench"
)

// excStorm builds the benchmark: per iteration, one SVC and one UD,
// each resuming through its own handler.
func excStorm() *simbench.Benchmark {
	return &simbench.Benchmark{
		Name:        "custom.exc-storm",
		Title:       "Exception Storm",
		Category:    simbench.CatException,
		Description: "alternating syscall and undefined-instruction traps",
		PaperIters:  10_000_000,
		TestedOps: func(r *simbench.Result) uint64 {
			return r.Exc[2] + r.Exc[1] // syscalls + undefs
		},
		Validate: func(r *simbench.Result) error {
			want := uint64(r.Iters)
			if r.Exc[2] != want || r.Exc[1] != want {
				return fmt.Errorf("expected %d of each trap, got svc=%d undef=%d",
					want, r.Exc[2], r.Exc[1])
			}
			return nil
		},
		Build: func(env *simbench.Env) error {
			a := env.A
			simbench.EmitPreamble(env)
			simbench.EmitLoadIters(env, simbench.R11)
			a.MOVI(simbench.R8, 0)
			simbench.EmitBegin(env, simbench.R0)

			a.Label("kloop")
			env.Arch.EmitSyscall(a) // architecture-specific trap
			env.Arch.EmitUndef(a)
			a.SUBI(simbench.R11, simbench.R11, 1)
			a.CMPI(simbench.R11, 0)
			a.B(simbench.CondNE, "kloop")

			simbench.EmitEnd(env, simbench.R0)
			simbench.EmitResult(env, simbench.R8, simbench.R0)
			simbench.EmitHalt(env)
			simbench.EmitVectors(env, simbench.Handlers{
				Syscall: "svc_handler",
				Undef:   "undef_handler",
			})
			a.Label("svc_handler")
			a.ADDI(simbench.R8, simbench.R8, 1)
			a.ERET()
			a.Label("undef_handler")
			a.ADDI(simbench.R8, simbench.R8, 2)
			a.ERET()
			return nil
		},
	}
}

func main() {
	bench := excStorm()
	const iters = 100_000

	fmt.Printf("%s — %s\n\n", bench.Title, bench.Description)
	fmt.Printf("%-10s %-6s %-12s %-10s\n", "engine", "arch", "kernel", "ns/trap")
	for _, sup := range simbench.Architectures() {
		for _, name := range []string{"dbt", "interp", "detailed", "virt", "native"} {
			eng, err := simbench.NewEngine(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := simbench.NewRunner(eng, sup).Run(bench, iters)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-6s %-12s %-10.1f\n", name, sup.Name(), res.Kernel,
				float64(res.Kernel.Nanoseconds())/float64(2*iters))
		}
	}
	fmt.Println("\nThe same build function ran bare-metal on five engines and two")
	fmt.Println("guest architectures, with validation that every trap was taken.")
}
