// Quickstart: run one SimBench micro-benchmark on two simulation
// engines and compare them — the smallest useful use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"simbench"
)

func main() {
	// The System Call benchmark: one trap per iteration, an empty
	// handler — isolating exception entry/dispatch/return cost.
	bench := simbench.MustBenchmark("exc.syscall")
	const iters = 200_000

	fmt.Printf("%s — %s\n", bench.Title, bench.Description)
	fmt.Printf("%-10s %-12s %-14s %-12s %s\n", "engine", "kernel", "insns", "ns/iter", "syscalls")

	for _, name := range []string{"dbt", "interp", "detailed", "virt", "native"} {
		eng, err := simbench.NewEngine(name)
		if err != nil {
			log.Fatal(err)
		}
		runner := simbench.NewRunner(eng, simbench.ARM())
		res, err := runner.Run(bench, iters)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-12s %-14d %-12.1f %d\n",
			name, res.Kernel, res.Stats.Instructions,
			float64(res.Kernel.Nanoseconds())/float64(iters),
			res.Exc[2]) // isa.ExcSyscall
	}

	fmt.Println("\nNote how the direct-execution modes (virt, native) take the trap")
	fmt.Println("in 'hardware', the DBT pays a side exit + state sync, and the")
	fmt.Println("detailed interpreter pays its event machinery on every instruction.")
}
