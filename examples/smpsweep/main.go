// Smpsweep: the cores axis as data. One JSON spec sweeps the cat:smp
// contention benchmarks across guest core counts and engines — one
// table row per benchmark × core count, one column per engine — and
// renders the same sweep twice: online (measuring every cell into a
// store) and offline (straight from the store, byte-identical, no
// engine constructed). The 1-core rows reuse pre-SMP cache cells: a
// single-core cell's content address does not mention cores at all.
//
// The same file works on the CLIs:
//
//	simsweep -spec examples/smpsweep/spec.json -cache-dir /tmp/c
//	simreport -spec examples/smpsweep/spec.json -offline -cache-dir /tmp/c
//
//	go run ./examples/smpsweep
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"simbench"
)

func main() {
	spec, err := simbench.LoadSpec(filepath.Join("examples", "smpsweep", "spec.json"))
	if err != nil {
		// Running from inside the example directory instead.
		if spec, err = simbench.LoadSpec("spec.json"); err != nil {
			log.Fatal(err)
		}
	}

	cacheDir, err := os.MkdirTemp("", "smpsweep-cache-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	store, err := simbench.OpenStore(cacheDir)
	if err != nil {
		log.Fatal(err)
	}

	// Online: measure the cores × engines matrix (the spec pins its own
	// tiny iteration policy) and cache every cell.
	var online bytes.Buffer
	opts := simbench.Options{Out: &online, Store: store}
	if err := simbench.RunSpec(spec, opts); err != nil {
		log.Fatal(err)
	}
	fmt.Print(online.String())

	// Offline: a fresh store handle renders the same sweep without
	// booting a single guest core.
	store2, err := simbench.OpenStore(cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	var offline bytes.Buffer
	opts.Out = &offline
	opts.Store = store2
	if err := simbench.RunSpecOffline(spec, opts); err != nil {
		log.Fatal(err)
	}

	if bytes.Equal(online.Bytes(), offline.Bytes()) {
		fmt.Println("offline render from the store is byte-identical to the measured run")
	} else {
		log.Fatal("offline render diverged from the measured run")
	}
}
