// Densitymodel demonstrates the paper's third contribution: using
// SimBench's detailed per-mechanism metrics to model application
// performance *without* running full application benchmarks.
//
// The model: run SimBench once on the target engine to fit a
// per-operation cost for each mechanism (kernel time minus baseline
// instruction cost, divided by tested operations), profile an
// application's operation densities once on the cheap reference
// interpreter, then predict the application's runtime on the target
// engine as
//
//	T ≈ insns·c_insn + Σ_ops density_op·insns·c_op
//
// and compare against the measured runtime.
//
//	go run ./examples/densitymodel
package main

import (
	"fmt"
	"log"

	"simbench"
)

func main() {
	target, err := simbench.NewEngine("dbt")
	if err != nil {
		log.Fatal(err)
	}
	profiler, err := simbench.NewEngine("interp")
	if err != nil {
		log.Fatal(err)
	}
	arm := simbench.ARM()

	// 1. Fit per-operation costs on the target engine from SimBench.
	// The baseline instruction cost comes from the benchmark with the
	// lowest time share attributable to its tested op (hot memory).
	type fit struct {
		name    string
		cost    float64 // seconds per tested op, above baseline
		density func(*simbench.Result) uint64
	}
	baseline := 0.0
	{
		res, err := simbench.NewRunner(target, arm).Run(simbench.MustBenchmark("mem.hot"), 100_000)
		if err != nil {
			log.Fatal(err)
		}
		baseline = res.Kernel.Seconds() / float64(res.Stats.Instructions)
		fmt.Printf("baseline instruction cost on %s: %.1f ns/insn\n\n", target.Name(), baseline*1e9)
	}

	costBenches := []string{
		"exc.syscall", "exc.undef", "exc.data-fault", "exc.swi",
		"io.device", "io.coproc", "mem.cold", "mem.tlb-evict", "mem.tlb-flush",
		"ctrl.interpage-indirect",
	}
	iters := map[string]int64{"mem.cold": 100_000, "exc.data-fault": 50_000}
	costs := map[string]float64{}
	for _, name := range costBenches {
		b := simbench.MustBenchmark(name)
		n := iters[name]
		if n == 0 {
			n = 150_000
		}
		res, err := simbench.NewRunner(target, arm).Run(b, n)
		if err != nil {
			log.Fatal(err)
		}
		ops := res.TestedOps()
		if ops == 0 {
			ops = uint64(n)
		}
		perOp := (res.Kernel.Seconds() - baseline*float64(res.Stats.Instructions)) / float64(ops)
		if perOp < 0 {
			perOp = 0
		}
		costs[name] = perOp
		fmt.Printf("  %-26s %8.1f ns/op (%d ops)\n", name, perOp*1e9, ops)
	}

	// 2. Profile application densities on the cheap reference
	// interpreter, then predict and verify on the target engine.
	fmt.Printf("\n%-18s %-12s %-12s %s\n", "workload", "predicted", "measured", "pred/meas")
	for _, wname := range []string{"spec.mcf", "spec.sjeng", "spec.gobmk", "spec.hmmer"} {
		w := simbench.MustBenchmark(wname)
		prof, err := simbench.NewRunner(profiler, arm).Run(w, 400)
		if err != nil {
			log.Fatal(err)
		}
		insns := float64(prof.Stats.Instructions)
		pred := baseline * insns
		pred += costs["exc.syscall"] * float64(prof.Exc[2])
		pred += costs["exc.data-fault"] * float64(prof.Exc[4])
		pred += costs["exc.swi"] * float64(prof.Exc[5])
		pred += costs["io.device"] * float64(prof.SafeDevAccesses)
		pred += costs["io.coproc"] * float64(prof.CoprocDevAccesses)
		pred += costs["mem.cold"] * float64(prof.Stats.TLBMisses)
		pred += costs["ctrl.interpage-indirect"] *
			float64(prof.Stats.BranchIndirectInter+prof.Stats.BranchIndirectIntra)

		meas, err := simbench.NewRunner(target, arm).Run(w, 400)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %-12s %-12s %.2f\n",
			wname, fmt.Sprintf("%.4fs", pred), fmt.Sprintf("%.4fs", meas.Kernel.Seconds()),
			pred/meas.Kernel.Seconds())
	}

	fmt.Println("\nPredictions from micro-benchmark-fitted costs land within a small")
	fmt.Println("factor of measurement — close enough to steer simulator development")
	fmt.Println("without re-running full application suites (paper §I, contribution 3).")
}
