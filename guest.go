package simbench

import (
	"simbench/internal/asm"
	"simbench/internal/core"
	"simbench/internal/isa"
)

// Guest-programming surface: everything needed to write a new
// benchmark against the methodology — an assembler handle (through
// Env.A), the register and condition names, and the protocol emitters
// (preamble, vector table, iteration load, kernel begin/end, result
// report). See examples/custombench for a complete user-defined
// benchmark.

// Assembler builds SV32 guest code; benchmarks receive one via Env.A.
type Assembler = asm.Assembler

// Label names a position in guest code.
type Label = asm.Label

// Reg is an SV32 general-purpose register.
type Reg = isa.Reg

// Cond is an SV32 branch condition.
type Cond = isa.Cond

// Handlers names benchmark-provided exception handler labels.
type Handlers = core.Handlers

// General-purpose registers. By the suite's conventions R11 is the
// iteration counter, R8 the checksum accumulator, R0-R3 scratch.
const (
	R0  = isa.R0
	R1  = isa.R1
	R2  = isa.R2
	R3  = isa.R3
	R4  = isa.R4
	R5  = isa.R5
	R6  = isa.R6
	R7  = isa.R7
	R8  = isa.R8
	R9  = isa.R9
	R10 = isa.R10
	R11 = isa.R11
	R12 = isa.R12
	SP  = isa.SP
	LR  = isa.LR
)

// Branch conditions.
const (
	CondAL = isa.CondAL
	CondEQ = isa.CondEQ
	CondNE = isa.CondNE
	CondLT = isa.CondLT
	CondGE = isa.CondGE
	CondGT = isa.CondGT
	CondLE = isa.CondLE
	CondLO = isa.CondLO
	CondHS = isa.CondHS
	CondHI = isa.CondHI
	CondLS = isa.CondLS
)

// Protocol emitters (the three-phase benchmark skeleton).
var (
	// EmitPreamble emits _start: stack, vectors, optional MMU enable.
	EmitPreamble = core.EmitPreamble
	// EmitVectors emits the vector table and default abort handler.
	EmitVectors = core.EmitVectors
	// EmitLoadIters loads the configured iteration count into a register.
	EmitLoadIters = core.EmitLoadIters
	// EmitBegin starts the timed kernel phase.
	EmitBegin = core.EmitBegin
	// EmitEnd ends the timed kernel phase.
	EmitEnd = core.EmitEnd
	// EmitResult reports a checksum word to the harness.
	EmitResult = core.EmitResult
	// EmitHalt stops the machine.
	EmitHalt = core.EmitHalt
)
