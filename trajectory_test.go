package simbench

// The committed BENCH_*.json files are the repo's recorded performance
// trajectory (see README "Performance trajectory"). They are read by
// humans and diffed by tools, so this test keeps every one of them
// loadable: a valid report.Record array whose coordinates still name
// benchmarks and engines this tree can run.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"simbench/internal/report"
)

func TestCommittedBenchRecords(t *testing.T) {
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no committed BENCH_*.json files; the performance trajectory is gone")
	}
	for _, path := range paths {
		t.Run(path, func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			var recs []report.Record
			if err := json.Unmarshal(data, &recs); err != nil {
				t.Fatalf("not a report.Record array: %v", err)
			}
			if len(recs) == 0 {
				t.Fatal("empty record set")
			}
			for i, r := range recs {
				if _, err := BenchmarkByName(r.Benchmark); err != nil {
					t.Errorf("record %d: %v", i, err)
				}
				if _, err := NewEngine(r.Engine); err != nil {
					t.Errorf("record %d: %v", i, err)
				}
				if r.Arch != "arm" && r.Arch != "x86" {
					t.Errorf("record %d: unknown arch %q", i, r.Arch)
				}
				if r.Error == "" && r.KernelSeconds <= 0 {
					t.Errorf("record %d (%s/%s): kernel_seconds %v", i, r.Benchmark, r.Engine, r.KernelSeconds)
				}
			}
		})
	}
}

// TestHotpathTrajectoryPaired pins the structure of the PR 10 hot-path
// record set: a before/after pair, so every cell coordinate appears
// exactly twice — first the pre-optimization measurement, then the
// post-optimization one taken by the same invocation on the same host.
func TestHotpathTrajectoryPaired(t *testing.T) {
	data, err := os.ReadFile("BENCH_hotpath_pr10.json")
	if err != nil {
		t.Fatal(err)
	}
	var recs []report.Record
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, r := range recs {
		seen[r.Arch+"/"+r.Benchmark+"/"+r.Engine]++
	}
	if len(seen) == 0 {
		t.Fatal("no cells")
	}
	for cell, n := range seen {
		if n != 2 {
			t.Errorf("cell %s has %d records, want a before/after pair", cell, n)
		}
	}
}
